// SimEnv: the simulated operating environment one target run executes in —
// virtual filesystem, heap handles, sockets, named mutexes, errno, a
// synthetic call stack, a step-budget watchdog, and the FaultBus that makes
// the environment injectable. One SimEnv per test execution; everything is
// deterministic given the seed.
//
// The environment sits on the hot path of every simulated libc call, so its
// tables are flat by default: paths and mutex names are interned to dense
// uint32 ids (util/interner) and every table is directly indexed by that id
// (interned ids are dense, so the open-addressed hash degenerates into its
// perfect-hash special case), file descriptors index a dense slot vector,
// and heap handles are a dense slot vector plus a payload free-list instead
// of two ordered maps. A small sorted index of live path ids preserves the
// lexicographic-order guarantee ListDir/readdir inherited from the original
// std::map filesystem. The original std::map-backed tables are retained
// behind SimEnvConfig::reference_structures as the equivalence oracle and
// the perf baseline; both modes are observably identical (asserted by
// sim_equivalence_test and enforced per benchmark run by bench/perf_sim).
#ifndef AFEX_SIM_ENV_H_
#define AFEX_SIM_ENV_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "injection/fault_bus.h"
#include "sim/coverage.h"
#include "sim/crash.h"
#include "util/interner.h"
#include "util/rng.h"

namespace afex {

class SimLibc;

struct SimEnvConfig {
  uint64_t seed = 1;
  size_t step_budget = 1'000'000;
  // Run the original std::map-backed environment tables (and the map-backed
  // fault-bus call counters): the equivalence oracle and the benchmark
  // baseline for the flat structures.
  bool reference_structures = false;
};

class SimEnv {
 public:
  explicit SimEnv(uint64_t seed = 1, size_t step_budget = 1'000'000);
  explicit SimEnv(const SimEnvConfig& config);
  ~SimEnv();

  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  // Rewinds the environment to the pristine post-construction state for a
  // new run while KEEPING warmed capacity: interned path ids (and the node
  // slots sized for them), container buffers, and recycled payload strings
  // survive, so a harness can run millions of tests through one arena env
  // without re-paying construction, interning, or teardown per test. Every
  // observable bit of state (filesystem, fds, sockets, heap, mutexes,
  // errno, stack, coverage, bus counters/specs, RNG, watchdog) is reset —
  // a Reset env behaves identically to a freshly constructed one, which
  // sim_equivalence_test and the perf_sim digest verify.
  void ResetForRun(uint64_t seed, size_t step_budget);

  FaultBus& bus() { return bus_; }
  const FaultBus& bus() const { return bus_; }
  SimLibc& libc() { return *libc_; }
  CoverageSet& coverage() { return coverage_; }
  const CoverageSet& coverage() const { return coverage_; }
  Rng& rng() { return rng_; }
  bool reference_structures() const { return reference_; }

  // ---- errno ----
  int sim_errno() const { return errno_; }
  void set_sim_errno(int err) { errno_ = err; }

  // ---- synthetic call stack (for injection-point traces) ----
  // Frames are stored as raw pointers; callers pass string literals (the
  // StackFrame RAII guard below), so no per-frame string is constructed on
  // the no-fault path. Strings materialize only when a fault triggers. The
  // reference mode additionally constructs the per-frame std::string the
  // seed implementation built, so the baseline keeps the original cost.
  void PushFrame(const char* name) {
    stack_.push_back(name);
    if (reference_) {
      ref_stack_.emplace_back(name);
    }
  }
  void PopFrame() {
    stack_.pop_back();
    if (reference_) {
      ref_stack_.pop_back();
    }
  }
  std::vector<std::string> CaptureStack() const {
    return std::vector<std::string>(stack_.begin(), stack_.end());
  }
  // Stack captured when the first fault triggered this run (empty if none).
  const std::vector<std::string>& injection_stack() const { return injection_stack_; }
  // Moves the captured stack out (the harness hands it to the outcome once
  // the run is over; the env is about to be destroyed anyway).
  std::vector<std::string> TakeInjectionStack() { return std::move(injection_stack_); }
  bool fault_triggered() const { return !injection_stack_.empty() || bus_.triggered(); }
  // Called by SimLibc when an armed fault fires; records the first
  // trigger's stack with the failing libc function as the innermost frame
  // (exactly what a real backtrace at the interposer would show).
  void RecordInjection(const char* function);

  // ---- watchdog ----
  // Consumes `cost` steps; throws SimHang when the budget is exhausted.
  // Inline: this runs once per simulated libc call.
  void Tick(size_t cost = 1) {
    steps_ += cost;
    if (steps_ > step_budget_) {
      ThrowHang();
    }
  }
  size_t steps_used() const { return steps_; }

  // ---- virtual filesystem (fixture side; targets go through SimLibc) ----
  struct FileNode {
    std::string content;
    bool is_dir = false;
    bool readable = true;
    bool writable = true;
  };
  // Content is copied; in flat mode it is assigned into the node's warm
  // buffer, so re-creating a path an arena env has seen before allocates
  // nothing.
  void AddFile(std::string_view path, std::string_view content);
  void AddDir(std::string_view path);
  bool Exists(std::string_view path) const;
  bool IsDir(std::string_view path) const;
  // nullptr when absent. Returned pointers stay valid until the next
  // AddFile/AddDir/Remove.
  const FileNode* Find(std::string_view path) const;
  FileNode* FindMutable(std::string_view path);
  // erase() semantics: true when the path existed.
  bool Remove(std::string_view path);
  // Paths directly under `dir` (lexicographic order).
  std::vector<std::string> ListDir(std::string_view dir) const;

  // Interned-path fast lane used by SimLibc: open files remember the id, so
  // every later stream/fd operation resolves its node without re-hashing
  // the path.
  static constexpr uint32_t kNoPath = StringInterner::kUnknown;
  uint32_t InternPath(std::string_view path) { return names_.Intern(path); }
  // Inline fast lane: one bounds-checked index in flat mode.
  const FileNode* FindById(uint32_t path_id) const {
    if (reference_) {
      return RefFindById(path_id);
    }
    return path_id < fs_epoch_.size() && fs_epoch_[path_id] == epoch_ ? &fs_nodes_[path_id]
                                                                      : nullptr;
  }
  FileNode* FindMutableById(uint32_t path_id) {
    return const_cast<FileNode*>(static_cast<const SimEnv*>(this)->FindById(path_id));
  }
  // Creates/overwrites the file for an already-interned path: open/fopen
  // resolve the path to an id once and perform every subsequent filesystem
  // touch through it, so one libc call costs one hash at most.
  void AddFileById(uint32_t path_id, std::string_view content);
  bool RemoveById(uint32_t path_id);

  // ---- heap handles ----
  // A "pointer" is an opaque nonzero handle; handle 0 is NULL. Dereferencing
  // NULL or a never-allocated handle raises SimCrash, which is exactly how
  // the paper's Apache bug (Fig. 7) manifests. Handles are never reused.
  uint64_t AllocHandle(size_t bytes);
  void FreeHandle(uint64_t handle);
  bool HandleValid(uint64_t handle) const;
  // Throws SimCrash on NULL/invalid handle; returns the handle for chaining.
  uint64_t Deref(uint64_t handle, const char* what);
  // Payload attached to string allocations (strdup/getcwd). The returned
  // reference stays valid until the next payload-creating libc call or
  // free — copy it out before allocating again.
  void SetHandlePayload(uint64_t handle, std::string_view payload);
  const std::string& HandlePayload(uint64_t handle);
  size_t live_allocations() const;

  // ---- named mutexes ----
  // Unlocking a mutex that is not locked aborts, mirroring glibc's
  // consistency check — the MySQL double-unlock bug's crash mode.
  void MutexLock(std::string_view name);
  void MutexUnlock(std::string_view name);
  bool MutexLocked(std::string_view name) const;

  // ---- fd table (managed by SimLibc) ----
  struct OpenFile {
    uint32_t path_id = kNoPath;
    size_t offset = 0;
    bool append = false;
    bool for_write = false;
    bool error_flag = false;  // ferror()
    std::vector<std::string> dir_entries;  // readdir() snapshot for directories
    size_t dir_index = 0;
  };
  struct Socket {
    bool bound = false;
    bool listening = false;
    bool connected = false;
    std::string peer;
    std::string inbox;  // bytes available to recv
  };

  // Descriptors are handed out monotonically and never reused.
  int NextFd() { return next_fd_++; }
  // Registers fd as an open file and returns the (field-reset) entry for
  // the caller to fill in place; buffers warmed by earlier runs are reused.
  OpenFile& CreateOpenFile(int fd);
  OpenFile* FindOpenFile(int fd) {
    if (reference_) {
      return RefFindOpenFile(fd);
    }
    FdEntry* entry = FdAt(fd);
    return entry != nullptr && entry->kind == kFdFile && entry->epoch == epoch_ ? &entry->file
                                                                               : nullptr;
  }
  bool HasOpenFile(int fd) const;
  // erase() semantics: true when the fd was an open file.
  bool RemoveOpenFile(int fd);
  Socket& AddSocket(int fd);
  Socket* FindSocket(int fd) {
    if (reference_) {
      return RefFindSocket(fd);
    }
    FdEntry* entry = FdAt(fd);
    return entry != nullptr && entry->kind == kFdSocket && entry->epoch == epoch_
               ? &entry->socket
               : nullptr;
  }
  bool RemoveSocket(int fd);

  // Current working directory (affects nothing but chdir/getcwd round-trips).
  const std::string& cwd() const { return cwd_; }
  void set_cwd(std::string cwd) { cwd_ = std::move(cwd); }

 private:
  static constexpr uint64_t kHandleBase = 0x1000;
  static constexpr int kFirstFd = 3;

  struct HeapSlot {
    size_t bytes = 0;
    int32_t payload = -1;  // index into payload_pool_, -1 = none
    bool live = false;
  };
  enum FdKind : uint8_t { kFdEmpty = 0, kFdFile = 1, kFdSocket = 2 };
  struct FdEntry {
    uint8_t kind = kFdEmpty;
    // Entries are valid only when their epoch matches the env's current run
    // epoch, so ResetForRun invalidates the whole table in O(1).
    uint32_t epoch = 0;
    OpenFile file;
    Socket socket;
  };

  FdEntry* FdAt(int fd) {
    if (fd < kFirstFd) {
      return nullptr;
    }
    size_t idx = static_cast<size_t>(fd - kFirstFd);
    return idx < fds_.size() ? &fds_[idx] : nullptr;
  }
  const FdEntry* FdAt(int fd) const { return const_cast<SimEnv*>(this)->FdAt(fd); }
  void EnsureFsSlot(uint32_t id);
  std::string& PayloadSlot(HeapSlot& slot);
  [[noreturn]] void ThrowHang();
  const FileNode* RefFindById(uint32_t path_id) const;
  OpenFile* RefFindOpenFile(int fd);
  Socket* RefFindSocket(int fd);

  FaultBus bus_;
  CoverageSet coverage_;
  Rng rng_;
  int errno_ = 0;
  std::vector<const char*> stack_;
  std::vector<std::string> ref_stack_;  // reference mode: the seed's string stack
  std::vector<std::string> injection_stack_;
  size_t steps_ = 0;
  size_t step_budget_;
  bool reference_ = false;

  // Shared interner for paths and mutex names (both modes intern, so open
  // files can carry ids either way; only the tables differ).
  StringInterner names_;

  // ---- flat structures (default) ----
  // Liveness is epoch-tagged (live iff tag == epoch_) so ResetForRun can
  // invalidate every table without sweeping it.
  uint32_t epoch_ = 1;
  std::vector<FileNode> fs_nodes_;    // indexed by path id
  std::vector<uint32_t> fs_epoch_;    // parallel liveness tags
  std::vector<uint32_t> fs_sorted_;   // live path ids, lexicographic by spelling
  std::vector<FdEntry> fds_;          // indexed by fd - kFirstFd
  std::vector<HeapSlot> heap_slots_;  // indexed by handle - kHandleBase
  // Payload strings are recycled through a free-list; HandlePayload
  // references stay valid until the next payload-creating call or free.
  std::vector<std::string> payload_pool_;
  std::vector<int32_t> payload_free_;
  size_t live_allocs_ = 0;
  std::vector<uint32_t> mutex_epoch_;  // indexed by name id; locked iff == epoch_

  // ---- reference structures (SimEnvConfig::reference_structures) ----
  std::map<std::string, FileNode> fs_map_;
  std::map<int, OpenFile> open_files_map_;
  std::map<int, Socket> sockets_map_;
  std::map<uint64_t, size_t> heap_map_;  // handle -> size
  std::map<uint64_t, std::string> heap_payload_map_;
  std::map<std::string, bool> mutexes_map_;

  int next_fd_ = kFirstFd;
  uint64_t next_handle_ = kHandleBase;
  std::string cwd_ = "/";
  SimLibc* libc_;  // owned; raw to break the include cycle
};

// RAII frame guard: StackFrame frame(env, "mi_create"); the name must be a
// string literal (or otherwise outlive the frame) — SimEnv keeps the
// pointer, not a copy.
class StackFrame {
 public:
  StackFrame(SimEnv& env, const char* name) : env_(&env) { env_->PushFrame(name); }
  ~StackFrame() { env_->PopFrame(); }
  StackFrame(const StackFrame&) = delete;
  StackFrame& operator=(const StackFrame&) = delete;

 private:
  SimEnv* env_;
};

// Coverage annotation used by every simulated target.
#define AFEX_COV(env, id) (env).coverage().Hit(id)

}  // namespace afex

#endif  // AFEX_SIM_ENV_H_
