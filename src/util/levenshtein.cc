#include "util/levenshtein.h"

#include <algorithm>

namespace afex {
namespace {

template <typename Seq>
size_t EditDistance(const Seq& a, const Seq& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) {
    return m;
  }
  if (m == 0) {
    return n;
  }
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace

size_t LevenshteinDistance(std::string_view a, std::string_view b) { return EditDistance(a, b); }

size_t LevenshteinDistanceTokens(std::span<const std::string> a, std::span<const std::string> b) {
  return EditDistance(a, b);
}

double TokenSimilarity(std::span<const std::string> a, std::span<const std::string> b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) {
    return 1.0;
  }
  size_t d = LevenshteinDistanceTokens(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

}  // namespace afex
