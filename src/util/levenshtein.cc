#include "util/levenshtein.h"

#include <algorithm>

namespace afex {
namespace {

template <typename Seq>
size_t EditDistance(const Seq& a, const Seq& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) {
    return m;
  }
  if (m == 0) {
    return n;
  }
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace

size_t LevenshteinDistance(std::string_view a, std::string_view b) { return EditDistance(a, b); }

size_t LevenshteinDistanceTokens(std::span<const std::string> a, std::span<const std::string> b) {
  return EditDistance(a, b);
}

size_t BoundedLevenshteinDistanceTokens(std::span<const uint32_t> a, std::span<const uint32_t> b,
                                        size_t limit) {
  // Keep `a` the shorter sequence (distance is symmetric) so the band walks
  // the fewer rows.
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  const size_t n = a.size();
  const size_t m = b.size();
  if (m - n > limit) {
    return limit + 1;  // length-difference lower bound
  }
  if (n == 0) {
    return m;  // m <= limit here
  }
  const size_t kOver = limit + 1;
  // Per-thread scratch rows: this runs once per representative comparison
  // on the per-test hot path, so the DP must not heap-allocate per call.
  static thread_local std::vector<size_t> prev;
  static thread_local std::vector<size_t> cur;
  prev.assign(m + 1, kOver);
  cur.assign(m + 1, kOver);
  for (size_t j = 0; j <= std::min(m, limit); ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= n; ++i) {
    const size_t jlo = i > limit ? i - limit : 1;
    const size_t jhi = std::min(m, i + limit);
    // Cells flanking the band must read as "over the limit" so stale values
    // from two rows ago never leak back in.
    cur[jlo - 1] = jlo == 1 ? std::min(i, kOver) : kOver;
    if (jhi < m) {
      cur[jhi + 1] = kOver;
    }
    size_t row_min = cur[jlo - 1];
    for (size_t j = jlo; j <= jhi; ++j) {
      size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t d = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
      cur[j] = std::min(d, kOver);
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > limit) {
      return kOver;  // no path through this row can come back under the limit
    }
    std::swap(prev, cur);
  }
  return std::min(prev[m], kOver);
}

double TokenSimilarity(std::span<const std::string> a, std::span<const std::string> b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) {
    return 1.0;
  }
  size_t d = LevenshteinDistanceTokens(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

}  // namespace afex
