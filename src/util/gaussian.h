// Discrete Gaussian sampling over attribute index ranges.
//
// AFEX's mutation step (paper §3, Algorithm 1 lines 7-9) picks a new value
// for a fault attribute from a discrete approximation of a Gaussian centered
// at the parent's current value, with standard deviation proportional to the
// axis cardinality (the paper uses sigma = |A_i| / 5). This biases mutation
// toward near neighbours without ever excluding distant values.
#ifndef AFEX_UTIL_GAUSSIAN_H_
#define AFEX_UTIL_GAUSSIAN_H_

#include <cstddef>
#include <cstdint>

#include "util/rng.h"

namespace afex {

// Samples an index in [0, cardinality) from a discrete Gaussian centered at
// `center` with standard deviation `sigma`. Out-of-range deviates are
// re-sampled (truncated Gaussian), so mass near the edges is not folded onto
// the boundary value. sigma <= 0 degenerates to returning `center`.
size_t SampleDiscreteGaussian(Rng& rng, size_t center, double sigma, size_t cardinality);

// Like SampleDiscreteGaussian but never returns `center` itself when the
// axis has at least two values — a mutation must change the attribute.
size_t SampleDiscreteGaussianExcludingCenter(Rng& rng, size_t center, double sigma,
                                             size_t cardinality);

// The paper's default: sigma = cardinality / 5.
double PaperSigma(size_t cardinality);

}  // namespace afex

#endif  // AFEX_UTIL_GAUSSIAN_H_
