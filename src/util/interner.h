// String interning for hot paths that compare many short strings (stack
// frames, function names). Interning maps each distinct spelling to a dense
// uint32 token id once; afterwards sequence algorithms (edit distance,
// exact-match memos) work on integer ids instead of re-hashing and
// re-comparing the same strings millions of times per campaign.
#ifndef AFEX_UTIL_INTERNER_H_
#define AFEX_UTIL_INTERNER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace afex {

class StringInterner {
 public:
  // Reserved id returned by Lookup for spellings never interned. Never
  // handed out by Intern, so a kUnknown token compares unequal to every
  // interned token (two distinct unknown spellings may share it: callers
  // only ever compare query tokens against interned tokens).
  static constexpr uint32_t kUnknown = 0xffffffffu;

  // Id of `s`, interning it first if new.
  uint32_t Intern(std::string_view s);

  // Id of `s`, or kUnknown if it was never interned. Does not modify the
  // interner, so const consumers can translate queries read-only.
  uint32_t Lookup(std::string_view s) const;

  // Spelling of an interned id.
  const std::string& Spelling(uint32_t id) const { return *spellings_.at(id); }

  size_t size() const { return spellings_.size(); }

  // Appends the id of every token to `out` (cleared first).
  void InternAll(std::span<const std::string> tokens, std::vector<uint32_t>& out);
  void LookupAll(std::span<const std::string> tokens, std::vector<uint32_t>& out) const;

 private:
  struct Hash {
    using is_transparent = void;
    // FNV-1a over 8-byte chunks: interned strings are short (paths, frame
    // names, libc functions), and the bytewise library hash shows up in
    // profiles once every libc call resolves a path through the interner.
    size_t operator()(std::string_view s) const {
      uint64_t h = 0xcbf29ce484222325ULL ^ (s.size() * 0x100000001b3ULL);
      const char* data = s.data();
      size_t n = s.size();
      while (n >= 8) {
        uint64_t chunk;
        __builtin_memcpy(&chunk, data, 8);
        h = (h ^ chunk) * 0x100000001b3ULL;
        h ^= h >> 29;
        data += 8;
        n -= 8;
      }
      uint64_t tail = 0;
      for (size_t i = 0; i < n; ++i) {
        tail = (tail << 8) | static_cast<unsigned char>(data[i]);
      }
      h = (h ^ tail) * 0x100000001b3ULL;
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  std::unordered_map<std::string, uint32_t, Hash, std::equal_to<>> ids_;
  // Pointers into ids_ keys; stable because unordered_map nodes never move.
  std::vector<const std::string*> spellings_;
};

// 64-bit hash of a token-id sequence (FNV-1a over the id bytes), for
// whole-sequence exact-match memos.
struct TokenSeqHash {
  size_t operator()(std::span<const uint32_t> ids) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t id : ids) {
      h = (h ^ id) * 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
  size_t operator()(const std::vector<uint32_t>& ids) const {
    return (*this)(std::span<const uint32_t>(ids));
  }
};

}  // namespace afex

#endif  // AFEX_UTIL_INTERNER_H_
