#include "util/strings.h"

#include <cctype>

namespace afex {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitViews(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint(std::string_view s, uint64_t& out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace afex
