#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace afex {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool ParseLogLevel(const std::string& text, LogLevel& out) {
  if (text == "debug") {
    out = LogLevel::kDebug;
  } else if (text == "info") {
    out = LogLevel::kInfo;
  } else if (text == "warn") {
    out = LogLevel::kWarn;
  } else if (text == "error") {
    out = LogLevel::kError;
  } else if (text == "off") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[afex %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace afex
