// Streaming statistics helpers used by impact-precision measurement and the
// benchmark harnesses.
#ifndef AFEX_UTIL_STATS_H_
#define AFEX_UTIL_STATS_H_

#include <cstddef>
#include <span>

namespace afex {

// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 for fewer than two samples.
  double variance() const;
  // Sample (Bessel-corrected) variance; 0 for fewer than two samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);

}  // namespace afex

#endif  // AFEX_UTIL_STATS_H_
