// Levenshtein (edit) distance, used by AFEX's redundancy clustering (paper
// §5): two injected faults whose injection-point stack traces are within a
// distance threshold are considered manifestations of the same behaviour.
#ifndef AFEX_UTIL_LEVENSHTEIN_H_
#define AFEX_UTIL_LEVENSHTEIN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace afex {

// Classic character-level edit distance with two-row dynamic programming.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

// Token-level edit distance: stack traces are sequences of frames, and a
// one-frame difference should cost 1 regardless of how long the frame's
// symbol name is. This is what the clustering module uses.
size_t LevenshteinDistanceTokens(std::span<const std::string> a, std::span<const std::string> b);

// Cutoff-bounded token edit distance over interned token ids. Returns the
// exact distance when it is <= limit, and limit + 1 otherwise. Runs the DP
// banded to the diagonal (Ukkonen): only cells within `limit` of the
// diagonal are computed, and the sweep aborts as soon as a whole row
// exceeds the limit — O(min(n,m) * limit) instead of O(n * m). The
// length-difference lower bound |n - m| is applied before any DP work.
size_t BoundedLevenshteinDistanceTokens(std::span<const uint32_t> a, std::span<const uint32_t> b,
                                        size_t limit);

// Normalized similarity in [0, 1]: 1 means identical, 0 means maximally
// distant (distance == max(len a, len b)). Two empty sequences are identical.
double TokenSimilarity(std::span<const std::string> a, std::span<const std::string> b);

}  // namespace afex

#endif  // AFEX_UTIL_LEVENSHTEIN_H_
