// Fixed-size thread pool backing the cluster substrate (paper §6.1): the
// explorer enqueues test executions, node managers drain them. Tests are
// independent ("embarrassing parallelism"), so a plain work queue suffices.
#ifndef AFEX_UTIL_THREAD_POOL_H_
#define AFEX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace afex {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace afex

#endif  // AFEX_UTIL_THREAD_POOL_H_
