// Small string helpers shared across the library. Kept minimal on purpose;
// anything std::string/string_view already does well is not wrapped.
#ifndef AFEX_UTIL_STRINGS_H_
#define AFEX_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace afex {

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

// Split without materializing the fields: the views alias `s`, so they are
// valid only while the underlying buffer is. For per-record parse loops
// that touch each field once.
std::vector<std::string_view> SplitViews(std::string_view s, char delim);

// Trims ASCII whitespace from both ends. Inline: line-parsing loops call
// this once per record.
inline std::string_view Trim(std::string_view s) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
  };
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && is_space(s[begin])) {
    ++begin;
  }
  while (end > begin && is_space(s[end - 1])) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Parses a non-negative integer; returns false on any non-digit or overflow.
bool ParseUint(std::string_view s, uint64_t& out);

}  // namespace afex

#endif  // AFEX_UTIL_STRINGS_H_
