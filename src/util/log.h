// Minimal leveled logger. The exploration session logs progress (paper §6.4
// step 7: "AFEX provides progress metrics in a log"); benches run with the
// logger silenced so their stdout stays machine-readable.
#ifndef AFEX_UTIL_LOG_H_
#define AFEX_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace afex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug" | "info" | "warn" | "error" | "off" (case-sensitive) into
// `out`. Returns false (out untouched) on anything else.
bool ParseLogLevel(const std::string& text, LogLevel& out);

// Emits one line to stderr with a level prefix. Thread-safe (single write).
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace afex

#define AFEX_LOG(level) \
  if (::afex::GetLogLevel() <= ::afex::LogLevel::level) ::afex::internal::LogLine(::afex::LogLevel::level)

#endif  // AFEX_UTIL_LOG_H_
