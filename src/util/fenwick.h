// Fenwick (binary indexed) trees for the explorer's selection structures:
// O(log n) point update, prefix sum, and weighted-selection descent over a
// mutable array. FitnessExplorer keeps one double tree (stored fitness per
// pool slot) and one integer tree (liveness per slot) and samples both
// parent-selection and eviction victims through SelectByWeight, whose
// per-slot weight is the affine form  a * fitness[i] + b * live[i]  — that
// single shape covers "aged fitness + epsilon floor" (parent choice) and
// "max - aged fitness + 1" (inverse-fitness eviction) without ever
// materializing the O(pool) weight array the reference algorithms build.
#ifndef AFEX_UTIL_FENWICK_H_
#define AFEX_UTIL_FENWICK_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

namespace afex {

template <typename T>
class Fenwick {
 public:
  Fenwick() : tree_(1, T{}) {}

  size_t size() const { return tree_.size() - 1; }

  void Clear() { tree_.assign(1, T{}); }

  // Appends one element with the given value (amortized O(log n)).
  void Push(T value) {
    size_t i = tree_.size();  // 1-based index of the new element
    size_t lowbit = i & (~i + 1);
    for (size_t j = 1; j < lowbit; j <<= 1) {
      value += tree_[i - j];
    }
    tree_.push_back(value);
  }

  // Adds `delta` to element i (0-based).
  void Add(size_t i, T delta) {
    for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  // Sum of the first `count` elements (indices [0, count)).
  T Prefix(size_t count) const {
    T sum{};
    for (size_t j = count; j > 0; j -= j & (~j + 1)) {
      sum += tree_[j];
    }
    return sum;
  }

  T Total() const { return Prefix(size()); }

  // Internal node (1-based); exposed for the two-tree descent below.
  T node(size_t i) const { return tree_[i]; }

 private:
  std::vector<T> tree_;  // tree_[0] is a sentinel
};

// Smallest 0-based index i such that the cumulative weight through element
// i strictly exceeds r, where the weight of element j is
// a * f[j] + b * c[j]; returns size()-1 when no prefix exceeds r (matching
// Rng::SampleWeightedPrefix's clamp). Requires non-negative per-element
// weights (cumulative weight non-decreasing) and f.size() == c.size() > 0.
// One synchronized descent over both trees: O(log n).
inline size_t SelectByWeight(const Fenwick<double>& f, const Fenwick<int64_t>& c, double a,
                             double b, double r) {
  size_t n = f.size();
  size_t mask = 1;
  while ((mask << 1) <= n) {
    mask <<= 1;
  }
  size_t pos = 0;
  double f_acc = 0.0;
  int64_t c_acc = 0;
  for (; mask > 0; mask >>= 1) {
    size_t next = pos + mask;
    if (next > n) {
      continue;
    }
    double cum = a * (f_acc + f.node(next)) + b * static_cast<double>(c_acc + c.node(next));
    if (!(cum > r)) {
      pos = next;
      f_acc += f.node(next);
      c_acc += c.node(next);
    }
  }
  return pos < n ? pos : n - 1;
}

// Flat segment tree over doubles answering "max over all elements" in O(1)
// (the root) with O(log n) point updates — the pool-maximum companion to
// the Fenwick sums above, replacing a multiset whose per-result node churn
// costs an allocation per insert/erase. Dead slots hold -infinity.
class MaxTree {
 public:
  size_t size() const { return size_; }

  void Clear() {
    size_ = 0;
    cap_ = 0;
    tree_.clear();
  }

  void Push(double value) {
    if (size_ == cap_) {
      Grow();
    }
    size_t i = size_++;
    Update(i, value);
  }

  void Update(size_t i, double value) {
    size_t node = cap_ + i;
    tree_[node] = value;
    for (node >>= 1; node >= 1; node >>= 1) {
      double merged = std::max(tree_[2 * node], tree_[2 * node + 1]);
      if (tree_[node] == merged) {
        break;
      }
      tree_[node] = merged;
    }
  }

  // Maximum over all pushed elements; requires size() > 0 for a meaningful
  // answer (returns -infinity otherwise).
  double Max() const { return cap_ == 0 ? kNegInf : tree_[1]; }

 private:
  static constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  void Grow() {
    size_t new_cap = cap_ == 0 ? 64 : cap_ * 2;
    std::vector<double> old_leaves(tree_.begin() + static_cast<ptrdiff_t>(cap_), tree_.end());
    tree_.assign(2 * new_cap, kNegInf);
    cap_ = new_cap;
    size_t n = size_;
    size_ = 0;
    for (size_t i = 0; i < n; ++i) {
      Push(old_leaves[i]);
    }
  }

  size_t size_ = 0;
  size_t cap_ = 0;  // power of two
  std::vector<double> tree_;  // 1-based; leaves at [cap_, cap_ + size_)
};

}  // namespace afex

#endif  // AFEX_UTIL_FENWICK_H_
