#include "util/interner.h"

namespace afex {

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(spellings_.size());
  auto [node, inserted] = ids_.emplace(std::string(s), id);
  spellings_.push_back(&node->first);
  return id;
}

uint32_t StringInterner::Lookup(std::string_view s) const {
  auto it = ids_.find(s);
  return it == ids_.end() ? kUnknown : it->second;
}

void StringInterner::InternAll(std::span<const std::string> tokens, std::vector<uint32_t>& out) {
  out.clear();
  out.reserve(tokens.size());
  for (const std::string& t : tokens) {
    out.push_back(Intern(t));
  }
}

void StringInterner::LookupAll(std::span<const std::string> tokens,
                               std::vector<uint32_t>& out) const {
  out.clear();
  out.reserve(tokens.size());
  for (const std::string& t : tokens) {
    out.push_back(Lookup(t));
  }
}

}  // namespace afex
