#include "util/stats.h"

#include <cmath>

namespace afex {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) {
    s.Add(x);
  }
  return s.variance();
}

}  // namespace afex
