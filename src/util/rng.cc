#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace afex {
namespace {

// SplitMix64: expands a single seed into well-distributed state words.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
  // xoshiro must not be seeded with all-zero state; SplitMix64 of any seed
  // cannot produce four zero words, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  have_spare_gaussian_ = true;
  return u * mul;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

size_t Rng::SampleWeighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    total += (w > 0.0 ? w : 0.0);
  }
  if (total <= 0.0) {
    return NextBelow(weights.size());
  }
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) {
      return i;
    }
    r -= w;
  }
  return weights.size() - 1;
}

size_t Rng::SampleWeightedPrefix(std::span<const double> prefix) {
  double total = prefix.empty() ? 0.0 : prefix.back();
  if (total <= 0.0) {
    return NextBelow(prefix.size());
  }
  double r = NextDouble() * total;
  // First index whose cumulative weight strictly exceeds r — the element
  // SampleWeighted's subtraction scan selects, up to floating-point
  // accumulation order (the two round differently at ulp scale; callers
  // that need agreement with the scan verify it empirically).
  size_t idx = static_cast<size_t>(
      std::upper_bound(prefix.begin(), prefix.end(), r) - prefix.begin());
  return std::min(idx, prefix.size() - 1);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace afex
