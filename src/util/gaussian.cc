#include "util/gaussian.h"

#include <cmath>

namespace afex {

double PaperSigma(size_t cardinality) { return static_cast<double>(cardinality) / 5.0; }

size_t SampleDiscreteGaussian(Rng& rng, size_t center, double sigma, size_t cardinality) {
  if (cardinality == 0) {
    return 0;
  }
  if (cardinality == 1 || sigma <= 0.0) {
    return center < cardinality ? center : cardinality - 1;
  }
  // Rejection-sample the truncated Gaussian. The acceptance probability is
  // at least ~0.38 even when the center sits on an edge with sigma spanning
  // the whole axis, so the expected iteration count is small; the fallback
  // cap keeps pathological parameters from looping.
  for (int attempt = 0; attempt < 64; ++attempt) {
    double deviate = static_cast<double>(center) + rng.NextGaussian() * sigma;
    double rounded = std::round(deviate);
    if (rounded >= 0.0 && rounded < static_cast<double>(cardinality)) {
      return static_cast<size_t>(rounded);
    }
  }
  return rng.NextBelow(cardinality);
}

size_t SampleDiscreteGaussianExcludingCenter(Rng& rng, size_t center, double sigma,
                                             size_t cardinality) {
  if (cardinality <= 1) {
    return 0;
  }
  for (int attempt = 0; attempt < 128; ++attempt) {
    size_t v = SampleDiscreteGaussian(rng, center, sigma, cardinality);
    if (v != center) {
      return v;
    }
  }
  // Deterministic fallback: nearest neighbour.
  return center + 1 < cardinality ? center + 1 : center - 1;
}

}  // namespace afex
