// Deterministic pseudo-random number generation for AFEX.
//
// Every stochastic component in the library (explorers, workload generators,
// simulated targets) draws from its own Rng seeded explicitly, so whole
// exploration sessions replay bit-for-bit given the same seed. We use
// xoshiro256** (Blackman & Vigna) with SplitMix64 seeding: fast, good
// statistical quality, and trivially portable — no dependence on libstdc++'s
// unspecified std::*_distribution algorithms.
#ifndef AFEX_UTIL_RNG_H_
#define AFEX_UTIL_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

namespace afex {

// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can also
// feed <random> adapters if ever needed, but all library code uses the
// explicit helpers below for cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  // Next raw 64-bit output.
  uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Index sampled proportionally to the given non-negative weights.
  // If all weights are zero (or the span is empty is a precondition
  // violation), falls back to uniform.
  size_t SampleWeighted(std::span<const double> weights);

  // Same distribution as SampleWeighted, but over a precomputed inclusive
  // prefix-sum array (prefix[i] = w_0 + ... + w_i, weights non-negative):
  // one uniform draw plus a binary search instead of a linear subtraction
  // scan. Draws exactly one value from the stream — callers that maintain
  // the prefix array incrementally get O(log n) selection with the same
  // seeded trajectory a SampleWeighted-based caller would consume.
  // Falls back to uniform when the total weight is zero.
  size_t SampleWeightedPrefix(std::span<const double> prefix);

  // Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child stream; used to give each component
  // (explorer, target, node manager) its own stream from one session seed.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace afex

#endif  // AFEX_UTIL_RNG_H_
