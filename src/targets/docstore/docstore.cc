#include "targets/docstore/docstore.h"

#include "injection/libc_profile.h"
#include "sim/env.h"
#include "sim/simlibc.h"
#include "util/strings.h"

namespace afex {
namespace docstore {

namespace {
constexpr char kSnapPath[] = "/data/store.snap";
constexpr char kJournalPath[] = "/data/journal.wal";
}  // namespace

void InstallFixture(SimEnv& env) {
  env.AddDir("/data");
  env.AddFile(kSnapPath, "");
  env.AddFile(kJournalPath, "");
}

// ---- V08 ----

int DocStoreV08::Put(std::string_view id, std::string_view doc) {
  StackFrame frame(*env_, "v08_put");
  AFEX_COV(*env_, kV08Base + 0);
  // Pre-production code: one buffer allocation per put, properly checked.
  uint64_t buffer = env_->libc().Malloc(doc.size() + 1);
  if (buffer == 0) {
    AFEX_COV(*env_, kV08Recovery + 0);
    return -1;
  }
  env_->libc().Free(buffer);
  docs_[std::string(id)] = doc;
  return 0;
}

int DocStoreV08::Get(std::string_view id, std::string& doc) {
  StackFrame frame(*env_, "v08_get");
  AFEX_COV(*env_, kV08Base + 1);
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return 1;
  }
  doc = it->second;
  return 0;
}

int DocStoreV08::Remove(std::string_view id) {
  StackFrame frame(*env_, "v08_remove");
  AFEX_COV(*env_, kV08Base + 2);
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return 1;
  }
  docs_.erase(it);
  return 0;
}

int DocStoreV08::Save() {
  StackFrame frame(*env_, "v08_save");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV08Base + 3);
  uint64_t stream = libc.Fopen(kSnapPath, "w");
  if (stream == 0) {
    AFEX_COV(*env_, kV08Recovery + 1);
    return -1;
  }
  for (const auto& [id, doc] : docs_) {
    if (libc.Fwrite(stream, id + ":" + doc + "\n") == 0) {
      AFEX_COV(*env_, kV08Recovery + 2);
      libc.Fclose(stream);
      return -1;
    }
  }
  if (libc.Fclose(stream) != 0) {
    AFEX_COV(*env_, kV08Recovery + 3);
    return -1;
  }
  AFEX_COV(*env_, kV08Base + 4);
  return 0;
}

int DocStoreV08::Load() {
  StackFrame frame(*env_, "v08_load");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV08Base + 5);
  uint64_t stream = libc.Fopen(kSnapPath, "r");
  if (stream == 0) {
    AFEX_COV(*env_, kV08Recovery + 4);
    return -1;
  }
  docs_.clear();
  std::string line;
  while (libc.Fgets(stream, line)) {
    std::string t(Trim(line));
    size_t colon = t.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    docs_[t.substr(0, colon)] = t.substr(colon + 1);
  }
  if (libc.Ferror(stream) != 0) {
    AFEX_COV(*env_, kV08Recovery + 5);
    libc.Fclose(stream);
    return -1;
  }
  libc.Fclose(stream);
  AFEX_COV(*env_, kV08Base + 6);
  return 0;
}

// ---- V20 ----

int DocStoreV20::Open() {
  StackFrame frame(*env_, "v20_open");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 0);
  journal_fd_ = libc.Open(kJournalPath, kWrOnly | kCreate | kAppend);
  if (journal_fd_ < 0) {
    AFEX_COV(*env_, kV20Recovery + 0);
    return -1;
  }
  return 0;
}

int DocStoreV20::EncodeDoc(std::string_view id, std::string_view doc, std::string& encoded) {
  StackFrame frame(*env_, "v20_encode_bson");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 1);
  // Length-prefixed encode into a growable buffer, checked at every step.
  uint64_t buffer = libc.Calloc(1, 16);
  if (buffer == 0) {
    AFEX_COV(*env_, kV20Recovery + 1);
    return -1;
  }
  uint64_t grown = libc.Realloc(buffer, id.size() + doc.size() + 16);
  if (grown == 0) {
    AFEX_COV(*env_, kV20Recovery + 2);
    libc.Free(buffer);
    return -1;
  }
  // Appends to `encoded`, so callers can prefix the journal op in place.
  encoded += std::to_string(id.size());
  encoded += '|';
  encoded += id;
  encoded += '|';
  encoded += std::to_string(doc.size());
  encoded += '|';
  encoded += doc;
  libc.Free(grown);
  return 0;
}

int DocStoreV20::Put(std::string_view id, std::string_view doc) {
  StackFrame frame(*env_, "v20_put");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 2);
  if (journal_fd_ < 0) {
    AFEX_COV(*env_, kV20Recovery + 3);
    return -1;
  }
  std::string encoded = "put ";
  if (EncodeDoc(id, doc, encoded) != 0) {
    return -1;
  }
  encoded += '\n';
  if (libc.Write(journal_fd_, encoded) < 0) {
    AFEX_COV(*env_, kV20Recovery + 4);
    return -1;  // durability first: no un-journaled writes
  }
  docs_[std::string(id)] = doc;
  AFEX_COV(*env_, kV20Base + 3);
  return 0;
}

int DocStoreV20::Get(std::string_view id, std::string& doc) {
  StackFrame frame(*env_, "v20_get");
  AFEX_COV(*env_, kV20Base + 4);
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return 1;
  }
  doc = it->second;
  return 0;
}

int DocStoreV20::Remove(std::string_view id) {
  StackFrame frame(*env_, "v20_remove");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 5);
  if (journal_fd_ >= 0) {
    std::string record = "del ";
    record += id;
    record += '\n';
    if (libc.Write(journal_fd_, record) < 0) {
      AFEX_COV(*env_, kV20Recovery + 5);
      return -1;
    }
  }
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return 1;
  }
  docs_.erase(it);
  return 0;
}

int DocStoreV20::Save() {
  StackFrame frame(*env_, "v20_save");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 6);
  // Atomic snapshot: temp file + rename.
  std::string temp = std::string(kSnapPath) + ".tmp";
  int fd = libc.Open(temp, kWrOnly | kCreate | kTrunc);
  if (fd < 0) {
    AFEX_COV(*env_, kV20Recovery + 6);
    return -1;
  }
  std::string encoded;
  for (const auto& [id, doc] : docs_) {
    encoded.clear();
    if (EncodeDoc(id, doc, encoded) != 0 || (encoded += '\n', libc.Write(fd, encoded) < 0)) {
      AFEX_COV(*env_, kV20Recovery + 7);
      libc.Close(fd);
      libc.Unlink(temp);
      return -1;
    }
  }
  if (libc.Close(fd) != 0) {
    AFEX_COV(*env_, kV20Recovery + 7);
    libc.Unlink(temp);
    return -1;
  }
  if (libc.Rename(temp, kSnapPath) != 0) {
    AFEX_COV(*env_, kV20Recovery + 6);
    libc.Unlink(temp);
    return -1;
  }
  AFEX_COV(*env_, kV20Base + 7);
  return 0;
}

int DocStoreV20::Load() {
  StackFrame frame(*env_, "v20_load");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 8);
  int fd = libc.Open(kSnapPath, kRdOnly);
  if (fd < 0) {
    AFEX_COV(*env_, kV20Recovery + 8);
    return -1;
  }
  std::string data;
  while (true) {
    // Read appends straight into the accumulating buffer: no chunk string.
    long n = libc.Read(fd, data, 128);
    if (n < 0) {
      if (env_->sim_errno() == sim_errno::kEINTR) {
        continue;
      }
      AFEX_COV(*env_, kV20Recovery + 9);
      libc.Close(fd);
      return -1;
    }
    if (n == 0) {
      break;
    }
  }
  libc.Close(fd);
  docs_.clear();
  for (std::string_view line : SplitViews(data, '\n')) {
    // encoded form: idlen|id|doclen|doc
    std::vector<std::string_view> parts = SplitViews(line, '|');
    if (parts.size() == 4) {
      docs_[std::string(parts[1])] = parts[3];
    }
  }
  AFEX_COV(*env_, kV20Base + 9);
  return 0;
}

int DocStoreV20::Compact() {
  StackFrame frame(*env_, "v20_compact");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 10);
  if (Save() != 0) {
    AFEX_COV(*env_, kV20Recovery + 10);
    return -1;
  }
  // Retire the old journal and start fresh.
  if (journal_fd_ >= 0) {
    libc.Close(journal_fd_);
    journal_fd_ = -1;
  }
  if (libc.Unlink(kJournalPath) != 0) {
    AFEX_COV(*env_, kV20Recovery + 11);
    return -1;
  }
  journal_fd_ = libc.Open(kJournalPath, kWrOnly | kCreate | kAppend);
  if (journal_fd_ < 0) {
    return -1;
  }
  AFEX_COV(*env_, kV20Base + 11);
  return 0;
}

int DocStoreV20::Stats(size_t& documents, size_t& snapshot_bytes) {
  StackFrame frame(*env_, "v20_stats");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 12);
  documents = docs_.size();
  StatBuf st;
  if (libc.Stat(kSnapPath, st) != 0) {
    AFEX_COV(*env_, kV20Recovery + 11);
    return -1;
  }
  snapshot_bytes = st.size;
  return 0;
}

int DocStoreV20::ReplayJournal() {
  StackFrame frame(*env_, "v20_replay_journal");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kV20Base + 13);
  uint64_t stream = libc.Fopen(kJournalPath, "r");
  if (stream == 0) {
    AFEX_COV(*env_, kV20Recovery + 9);
    return -1;
  }
  // The replay index was added late in the 2.0 cycle and its allocations
  // are never checked — the v2.0 crash AFEX found in §7.6. One index node
  // is allocated per replayed record, so the bug is reachable at several
  // call depths.
  uint64_t index = libc.Malloc(64);
  env_->Deref(index, "journal replay index");

  std::string line;
  while (libc.Fgets(stream, line)) {
    std::string_view t = Trim(line);
    uint64_t node = libc.Malloc(32);
    env_->Deref(node, "journal replay index node");
    libc.Free(node);
    if (StartsWith(t, "put ")) {
      std::vector<std::string_view> parts = SplitViews(t.substr(4), '|');
      if (parts.size() == 4) {
        docs_[std::string(parts[1])] = parts[3];
      }
    } else if (StartsWith(t, "del ")) {
      auto it = docs_.find(t.substr(4));
      if (it != docs_.end()) {
        docs_.erase(it);
      }
    }
    AFEX_COV(*env_, kV20Base + 14);
  }
  bool read_error = libc.Ferror(stream) != 0;
  libc.Fclose(stream);
  libc.Free(index);
  if (read_error) {
    AFEX_COV(*env_, kV20Recovery + 9);
    return -1;
  }
  AFEX_COV(*env_, kV20Base + 15);
  return 0;
}

}  // namespace docstore
}  // namespace afex
