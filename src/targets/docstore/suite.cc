#include "targets/docstore/suite.h"

#include <cassert>

#include "sim/env.h"
#include "targets/docstore/docstore.h"

namespace afex {
namespace docstore {
namespace {

std::string DocFor(size_t test_id, size_t k) {
  return "{\"n\":" + std::to_string(test_id * 100 + k) + "}";
}

// ---- V08 tests: put/get 0-19, snapshot 20-39, delete 40-49, mixed 50-59 ----

int RunV08(SimEnv& env, size_t id) {
  DocStoreV08 store(env);
  if (id < 20) {
    size_t docs = 1 + id % 5;
    for (size_t k = 0; k < docs; ++k) {
      if (store.Put("d" + std::to_string(k), DocFor(id, k)) != 0) {
        return 1;
      }
    }
    std::string doc;
    if (store.Get("d0", doc) != 0 || doc != DocFor(id, 0)) {
      return 1;
    }
    return 0;
  }
  if (id < 40) {
    size_t docs = 1 + id % 6;
    for (size_t k = 0; k < docs; ++k) {
      if (store.Put("s" + std::to_string(k), DocFor(id, k)) != 0) {
        return 1;
      }
    }
    if (store.Save() != 0) {
      return 1;
    }
    DocStoreV08 reloaded(env);
    if (reloaded.Load() != 0 || reloaded.size() != docs) {
      return 1;
    }
    std::string doc;
    return (reloaded.Get("s0", doc) == 0 && doc == DocFor(id, 0)) ? 0 : 1;
  }
  if (id < 50) {
    if (store.Put("x", DocFor(id, 1)) != 0 || store.Put("y", DocFor(id, 2)) != 0) {
      return 1;
    }
    if (store.Remove("x") != 0 || store.size() != 1) {
      return 1;
    }
    std::string doc;
    return store.Get("x", doc) == 1 ? 0 : 1;
  }
  // mixed: put, save, remove, reload (snapshot must win)
  if (store.Put("m", DocFor(id, 7)) != 0 || store.Save() != 0) {
    return 1;
  }
  if (store.Remove("m") != 0) {
    return 1;
  }
  if (store.Load() != 0 || store.size() != 1) {
    return 1;
  }
  return 0;
}

// ---- V20 tests: journaled put/get 0-14, snapshot 15-24, compact 25-34,
//                 stats 35-44, replay 45-59 ----

int RunV20(SimEnv& env, size_t id) {
  DocStoreV20 store(env);
  if (store.Open() != 0) {
    return 1;
  }
  // Scenario warmup: v2.0 deployments start with cache priming traffic
  // whose volume differs per scenario, so the call number of any given
  // operation shifts from test to test (the call-axis diagonals of a
  // mature system, vs the rigid call walls of v0.8).
  for (size_t w = 0; w < id % 7; ++w) {
    if (store.Put("warm", DocFor(id, 90 + w)) != 0 || store.Remove("warm") != 0) {
      return 1;
    }
  }
  if (id < 15) {
    size_t docs = 1 + id % 6;
    for (size_t k = 0; k < docs; ++k) {
      if (store.Put("d" + std::to_string(k), DocFor(id, k)) != 0) {
        return 1;
      }
    }
    std::string doc;
    return (store.Get("d0", doc) == 0 && doc == DocFor(id, 0)) ? 0 : 1;
  }
  if (id < 25) {
    size_t docs = 1 + id % 5;
    for (size_t k = 0; k < docs; ++k) {
      if (store.Put("s" + std::to_string(k), DocFor(id, k)) != 0) {
        return 1;
      }
    }
    if (store.Save() != 0) {
      return 1;
    }
    DocStoreV20 reloaded(env);
    if (reloaded.Open() != 0 || reloaded.Load() != 0 || reloaded.size() != docs) {
      return 1;
    }
    return 0;
  }
  if (id < 35) {
    for (size_t k = 0; k < 2 + id % 3; ++k) {
      if (store.Put("c" + std::to_string(k), DocFor(id, k)) != 0) {
        return 1;
      }
    }
    if (store.Compact() != 0) {
      return 1;
    }
    // After compaction the snapshot holds everything and new puts still work.
    return store.Put("post", DocFor(id, 99)) == 0 ? 0 : 1;
  }
  if (id < 45) {
    for (size_t k = 0; k < 1 + id % 4; ++k) {
      if (store.Put("t" + std::to_string(k), DocFor(id, k)) != 0) {
        return 1;
      }
    }
    if (store.Save() != 0) {
      return 1;
    }
    size_t documents = 0;
    size_t bytes = 0;
    if (store.Stats(documents, bytes) != 0) {
      return 1;
    }
    return (documents == 1 + id % 4 && bytes > 0) ? 0 : 1;
  }
  // replay family: write journal records, then replay into a fresh store
  size_t docs = 1 + id % 5;
  for (size_t k = 0; k < docs; ++k) {
    if (store.Put("r" + std::to_string(k), DocFor(id, k)) != 0) {
      return 1;
    }
  }
  DocStoreV20 recovered(env);
  if (recovered.Open() != 0) {
    return 1;
  }
  if (recovered.ReplayJournal() != 0 || recovered.size() != docs) {
    return 1;
  }
  std::string doc;
  return (recovered.Get("r0", doc) == 0 && doc == DocFor(id, 0)) ? 0 : 1;
}

}  // namespace

TargetSuite MakeSuiteV08() {
  TargetSuite suite;
  suite.name = "docstore-v0.8";
  suite.num_tests = kNumTests;
  suite.total_blocks = kTotalBlocks;
  suite.recovery_base = kRecoveryBase;
  // Per-version function axis, as ltrace profiling of each version would
  // produce (paper methodology): the pre-production store touches only the
  // stream API and malloc.
  suite.functions = {"malloc", "fopen", "fclose", "fgets", "ferror", "fwrite"};
  suite.run_test = [](SimEnv& env, size_t test_id) {
    assert(test_id < kNumTests);
    InstallFixture(env);
    return RunV08(env, test_id);
  };
  suite.step_budget = 100'000;
  return suite;
}

TargetSuite MakeSuiteV20() {
  TargetSuite suite;
  suite.name = "docstore-v2.0";
  suite.num_tests = kNumTests;
  suite.total_blocks = kTotalBlocks;
  suite.recovery_base = kRecoveryBase;
  // The mature version interacts with far more of its environment.
  suite.functions = {"malloc", "calloc", "realloc", "fopen", "fclose",
                     "fgets",  "ferror", "open",    "close", "read",
                     "write",  "stat",   "rename",  "unlink"};
  suite.run_test = [](SimEnv& env, size_t test_id) {
    assert(test_id < kNumTests);
    InstallFixture(env);
    return RunV20(env, test_id);
  };
  suite.step_budget = 100'000;
  return suite;
}

}  // namespace docstore
}  // namespace afex
