// DocStore: the MongoDB stand-in at two development stages (paper §7.6
// compares MongoDB 0.8 against 2.0):
//
//  * V08 (pre-production): a small in-memory document store with a plain
//    snapshot file. Light environment interaction — few libc calls, so
//    fewer failure opportunities, but what structure exists is strong
//    (all I/O concentrated in the snapshot path).
//
//  * V20 (industrial strength): adds a write-ahead journal, BSON-ish
//    document encoding, compaction, statistics, and journal replay. Much
//    heavier environment interaction — more opportunities for failure
//    (the paper's "more features come at the cost of reliability"), and
//    one crash bug in the replay path: the journal index allocation is
//    used without a NULL check.
#ifndef AFEX_TARGETS_DOCSTORE_DOCSTORE_H_
#define AFEX_TARGETS_DOCSTORE_DOCSTORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace afex {

class SimEnv;

namespace docstore {

inline constexpr uint32_t kTotalBlocks = 400;
inline constexpr uint32_t kRecoveryBase = 360;

inline constexpr uint32_t kV08Base = 0;
inline constexpr uint32_t kV20Base = 100;
inline constexpr uint32_t kV08Recovery = kRecoveryBase + 0;
inline constexpr uint32_t kV20Recovery = kRecoveryBase + 12;

class DocStoreV08 {
 public:
  explicit DocStoreV08(SimEnv& env) : env_(&env) {}

  int Put(std::string_view id, std::string_view doc);
  int Get(std::string_view id, std::string& doc);
  int Remove(std::string_view id);
  // Writes all documents to /data/store.snap.
  int Save();
  // Replaces the in-memory state from the snapshot.
  int Load();
  size_t size() const { return docs_.size(); }

 private:
  SimEnv* env_;
  std::map<std::string, std::string, std::less<>> docs_;
};

class DocStoreV20 {
 public:
  explicit DocStoreV20(SimEnv& env) : env_(&env) {}

  // Opens the journal; must be called first.
  int Open();
  int Put(std::string_view id, std::string_view doc);
  int Get(std::string_view id, std::string& doc);
  int Remove(std::string_view id);
  int Save();
  int Load();
  // Rewrites the snapshot and truncates the journal (rename + unlink).
  int Compact();
  // Reports document count and snapshot size (stat).
  int Stats(size_t& documents, size_t& snapshot_bytes);
  // Replays the journal into memory after a simulated crash. Contains the
  // unchecked-allocation crash bug.
  int ReplayJournal();
  size_t size() const { return docs_.size(); }

 private:
  // BSON-ish length-prefixed encoding; allocates via calloc/realloc.
  int EncodeDoc(std::string_view id, std::string_view doc, std::string& encoded);

  SimEnv* env_;
  std::map<std::string, std::string, std::less<>> docs_;
  int journal_fd_ = -1;
};

// Fixture for either version: /data directory plus empty snapshot/journal.
void InstallFixture(SimEnv& env);

}  // namespace docstore
}  // namespace afex

#endif  // AFEX_TARGETS_DOCSTORE_DOCSTORE_H_
