// DocStore target suites for the two development stages compared in paper
// §7.6 / Fig. 9. Both versions run the same 60 workload scenarios, so
// differences in AFEX's efficiency come from the code, not the tests.
#ifndef AFEX_TARGETS_DOCSTORE_SUITE_H_
#define AFEX_TARGETS_DOCSTORE_SUITE_H_

#include <cstddef>

#include "targets/target.h"

namespace afex {
namespace docstore {

inline constexpr size_t kNumTests = 60;

TargetSuite MakeSuiteV08();
TargetSuite MakeSuiteV20();

}  // namespace docstore
}  // namespace afex

#endif  // AFEX_TARGETS_DOCSTORE_SUITE_H_
