// TargetHarness: binds a TargetSuite to the exploration machinery. It plays
// the role of the node manager's sensor scripts (paper §6.1): run one test
// under one injected fault, observe the outcome (exit code, crash, hang,
// coverage delta, injection stack), and hand a TestOutcome to the session.
//
// Coverage accumulates across all runs of one harness instance, so
// "new blocks covered" is relative to the whole exploration session —
// create a fresh harness per session.
#ifndef AFEX_TARGETS_HARNESS_H_
#define AFEX_TARGETS_HARNESS_H_

#include <string>

#include "core/impact.h"
#include "core/session.h"
#include "sim/coverage.h"
#include "targets/target.h"

namespace afex {

class TargetHarness {
 public:
  explicit TargetHarness(TargetSuite suite, uint64_t seed = 42);

  // Builds the canonical <test, function, call> fault space. When
  // `include_zero_call` is true the call axis starts at 0, whose label "0"
  // means "run the test with no injection" (the Phi_coreutils convention).
  FaultSpace MakeSpace(size_t max_call, bool include_zero_call = false) const;

  // Executes the fault and returns the observation. Deterministic: the
  // SimEnv seed derives from the harness seed and the test id only.
  TestOutcome RunFault(const FaultSpace& space, const Fault& fault);

  // Session-compatible runner bound to `space` (which must outlive it).
  ExplorationSession::Runner MakeRunner(const FaultSpace& space);

  // Runs every suite test once without injection (the "plain test suite"
  // baseline of Table 1); returns the number of failing tests.
  size_t RunSuiteWithoutInjection();

  // Pre-seeds the session coverage with blocks covered before a campaign
  // was interrupted (journaled TestOutcome::new_block_ids), so resumed runs
  // keep counting "new blocks" relative to the whole campaign.
  void SeedCoverage(const std::vector<uint32_t>& blocks) { coverage_.MergeIds(blocks); }

  const TargetSuite& suite() const { return suite_; }
  const CoverageAccumulator& coverage() const { return coverage_; }
  double CoverageFraction() const { return coverage_.Fraction(); }
  double RecoveryCoverageFraction() const { return coverage_.RecoveryFraction(); }
  size_t tests_run() const { return tests_run_; }

 private:
  TargetSuite suite_;
  uint64_t seed_;
  CoverageAccumulator coverage_;
  size_t tests_run_ = 0;
};

}  // namespace afex

#endif  // AFEX_TARGETS_HARNESS_H_
