// TargetHarness: binds a TargetSuite to the exploration machinery. It plays
// the role of the node manager's sensor scripts (paper §6.1): run one test
// under one injected fault, observe the outcome (exit code, crash, hang,
// coverage delta, injection stack), and hand a TestOutcome to the session.
//
// Coverage accumulates across all runs of one harness instance, so
// "new blocks covered" is relative to the whole exploration session —
// create a fresh harness per session.
#ifndef AFEX_TARGETS_HARNESS_H_
#define AFEX_TARGETS_HARNESS_H_

#include <optional>
#include <string>

#include "core/impact.h"
#include "core/session.h"
#include "injection/plan.h"
#include "sim/coverage.h"
#include "sim/env.h"
#include "targets/target.h"

namespace afex {

class TargetHarness : public TargetBackend {
 public:
  // `reference_sim_structures` runs every SimEnv with the retained std::map
  // tables (SimEnvConfig::reference_structures) — the sim-layer equivalence
  // oracle and the bench/perf_sim baseline.
  explicit TargetHarness(TargetSuite suite, uint64_t seed = 42,
                         bool reference_sim_structures = false);

  // Builds the canonical <test, function, call> fault space. When
  // `include_zero_call` is true the call axis starts at 0, whose label "0"
  // means "run the test with no injection" (the Phi_coreutils convention).
  FaultSpace MakeSpace(size_t max_call, bool include_zero_call = false) const;

  // Executes the fault and returns the observation. Deterministic: the
  // SimEnv seed derives from the harness seed and the test id only.
  TestOutcome RunFault(const FaultSpace& space, const Fault& fault) override;

  // Session-compatible runner bound to `space` (which must outlive it).
  ExplorationSession::Runner MakeRunner(const FaultSpace& space);

  // Runs every suite test once without injection (the "plain test suite"
  // baseline of Table 1); returns the number of failing tests.
  size_t RunSuiteWithoutInjection();

  // Pre-seeds the session coverage with blocks covered before a campaign
  // was interrupted (journaled TestOutcome::new_block_ids), so resumed runs
  // keep counting "new blocks" relative to the whole campaign.
  void SeedCoverage(const std::vector<uint32_t>& blocks) override { coverage_.MergeIds(blocks); }

  const TargetSuite& suite() const { return suite_; }
  const CoverageAccumulator& coverage() const { return coverage_; }
  uint32_t coverage_total_blocks() const override { return suite_.total_blocks; }
  uint32_t coverage_recovery_base() const override { return suite_.recovery_base; }
  double CoverageFraction() const override { return coverage_.Fraction(); }
  double RecoveryCoverageFraction() const override { return coverage_.RecoveryFraction(); }
  size_t tests_run() const override { return tests_run_; }
  // Watchdog steps consumed across all runs — the "simulated instructions
  // executed" counter the CLI reports as sim steps/sec.
  size_t total_sim_steps() const override { return sim_steps_; }
  // Sub-phase timing (sim.decode / sim.run / sim.feedback_merge).
  void set_metrics_sink(obs::MetricsSink* sink) override { metrics_ = sink; }

 private:
  // The env each test runs in. Flat mode reuses one arena environment
  // (SimEnv::ResetForRun) so per-test construction, interning, and teardown
  // amortize away; reference mode constructs a fresh env per test, exactly
  // as the seed implementation did.
  SimEnv& EnvForRun(uint64_t seed, std::optional<SimEnv>& fresh);

  TargetSuite suite_;
  uint64_t seed_;
  bool reference_sim_;
  CoverageAccumulator coverage_;
  obs::MetricsSink* metrics_ = nullptr;

  size_t tests_run_ = 0;
  size_t sim_steps_ = 0;
  std::optional<SimEnv> arena_;
  // Decode cache for the space RunFault was last called with (one campaign
  // drives one space; rebuilt transparently if the space changes).
  CachedFaultDecoder decoder_;
};

}  // namespace afex

#endif  // AFEX_TARGETS_HARNESS_H_
