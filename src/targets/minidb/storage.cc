// Storage-engine half of MiniDb: table creation (mi_create path, Bug 1),
// WAL append, table load/store, checkpoint and crash recovery.
#include <algorithm>

#include "injection/libc_profile.h"
#include "sim/env.h"
#include "sim/simlibc.h"
#include "targets/minidb/minidb.h"
#include "util/strings.h"

namespace afex {
namespace minidb {

namespace {
std::string TablePath(std::string_view name) {
  std::string path = "/db/";
  path += name;
  path += ".tbl";
  return path;
}
constexpr char kWalPath[] = "/db/wal.log";
constexpr char kEngineMutex[] = "THR_LOCK_myisam";
}  // namespace

int MiniDb::CreateTable(std::string_view name) {
  StackFrame frame(*env_, "mi_create");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kCreateBase + 0);

  if (libc.MutexLock(kEngineMutex) != 0) {
    AFEX_COV(*env_, kCreateRecovery + 0);
    LogError("mi_create: cannot take engine lock");
    return -1;
  }

  // Allocate the table descriptor.
  uint64_t descriptor = libc.Malloc(128);
  if (descriptor == 0) {
    AFEX_COV(*env_, kCreateRecovery + 0);
    goto err;
  }

  {
    // Create and pre-format the table file: header plus an empty row area.
    int fd = libc.Open(TablePath(name), kWrOnly | kCreate | kTrunc);
    if (fd < 0) {
      AFEX_COV(*env_, kCreateRecovery + 1);
      libc.Free(descriptor);
      goto err;
    }
    if (libc.Write(fd, "MINIDB1\n") < 0) {
      AFEX_COV(*env_, kCreateRecovery + 2);
      libc.Close(fd);
      libc.Free(descriptor);
      goto err;
    }
    if (libc.Write(fd, "# rows\n") < 0) {
      AFEX_COV(*env_, kCreateRecovery + 2);
      libc.Close(fd);
      libc.Free(descriptor);
      goto err;
    }
    AFEX_COV(*env_, kCreateBase + 1);

    // ---- Bug 1 (paper Fig. 6, MySQL #53268) ----
    // The happy path releases the engine mutex before the final close...
    libc.MutexUnlock(kEngineMutex);
    if (libc.Close(fd) != 0) {
      AFEX_COV(*env_, kCreateRecovery + 3);
      libc.Free(descriptor);
      goto err;  // ...but the error label unlocks again: double unlock.
    }
  }

  libc.Free(descriptor);
  AFEX_COV(*env_, kCreateBase + 2);
  CacheStore(name, {});  // fresh table: header only, no rows
  return 0;

err:
  // Shared recovery label, as in mi_create.c:836.
  AFEX_COV(*env_, kCreateRecovery + 4);
  env_->libc().MutexUnlock(kEngineMutex);  // SIGABRT when already unlocked
  env_->libc().Unlink(TablePath(name));
  CacheInvalidate(name);
  LogError(std::string("mi_create failed for table ").append(name));
  return -1;
}

bool MiniDb::TableExists(std::string_view name) {
  StatBuf st;
  return env_->libc().Stat(TablePath(name), st) == 0;
}

int MiniDb::DropTable(std::string_view name) {
  StackFrame frame(*env_, "drop_table");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kAdminBase + 0);
  if (libc.MutexLock(kEngineMutex) != 0) {
    // Unlike mi_create, the newer code paths check the lock result.
    AFEX_COV(*env_, kAdminRecovery + 0);
    LogError("cannot take engine lock for drop");
    return -1;
  }
  int rc = libc.Unlink(TablePath(name));
  libc.MutexUnlock(kEngineMutex);
  CacheInvalidate(name);  // dropped, or in an unknown state after a failure
  if (rc != 0) {
    AFEX_COV(*env_, kAdminRecovery + 0);
    LogError(std::string("cannot drop table ").append(name));
    return -1;
  }
  AFEX_COV(*env_, kAdminBase + 1);
  return 0;
}

int MiniDb::AppendWal(std::string_view record) {
  StackFrame frame(*env_, "wal_append");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kWalBase + 0);
  if (wal_fd_ < 0) {
    AFEX_COV(*env_, kWalRecovery + 0);
    LogError("WAL not open");
    return -1;
  }
  std::string line(record);
  line += '\n';
  if (libc.Write(wal_fd_, line) < 0) {
    // A failed log write must not corrupt the engine: report and refuse
    // the operation (durability first).
    AFEX_COV(*env_, kWalRecovery + 1);
    LogError("WAL append failed");
    return -1;
  }
  ++wal_records_;
  AFEX_COV(*env_, kWalBase + 1);
  return 0;
}

void MiniDb::CacheStore(std::string_view table, const std::vector<Row>& rows) {
  auto it = table_cache_.find(table);
  ColumnTable& entry =
      it != table_cache_.end() ? it->second : table_cache_[std::string(table)];
  entry.keys.clear();
  entry.values.clear();
  entry.keys.reserve(rows.size());
  entry.values.reserve(rows.size());
  for (const Row& row : rows) {
    entry.keys.push_back(row.key);
    entry.values.push_back(row.value);
  }
}

void MiniDb::CacheInvalidate(std::string_view table) {
  auto it = table_cache_.find(table);
  if (it != table_cache_.end()) {
    table_cache_.erase(it);
  }
}

int MiniDb::LoadTable(std::string_view table, std::vector<Row>& rows) {
  StackFrame frame(*env_, "load_table");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kRowBase + 0);
  rows.clear();

  // Cache hit: materialize from the columns. Same logical blocks as the
  // parse path, so coverage accounting is representation-independent.
  if (auto cached = table_cache_.find(table); cached != table_cache_.end()) {
    const ColumnTable& entry = cached->second;
    rows.reserve(entry.keys.size());
    for (size_t i = 0; i < entry.keys.size(); ++i) {
      rows.push_back(Row{entry.keys[i], entry.values[i]});
      AFEX_COV(*env_, kRowBase + 1);
    }
    AFEX_COV(*env_, kRowBase + 2);
    return 0;
  }

  uint64_t stream = libc.Fopen(TablePath(table), "r");
  if (stream == 0) {
    AFEX_COV(*env_, kRowRecovery + 0);
    LogError(std::string("cannot open table ").append(table));
    return -1;
  }
  rows.reserve(8);
  std::string line;
  bool header_seen = false;
  while (libc.Fgets(stream, line)) {
    if (!header_seen) {
      header_seen = true;
      if (!StartsWith(line, "MINIDB1")) {
        AFEX_COV(*env_, kRowRecovery + 1);
        libc.Fclose(stream);
        LogError(std::string("corrupt table header in ").append(table));
        return -1;
      }
      continue;
    }
    if (StartsWith(line, "#")) {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    Row row;
    bool ok = false;
    row.key = libc.Strtol(std::string_view(line).substr(0, eq), ok);
    if (!ok) {
      AFEX_COV(*env_, kRowRecovery + 2);
      continue;  // skip unparsable rows, keep scanning
    }
    row.value = std::string(Trim(std::string_view(line).substr(eq + 1)));
    rows.push_back(std::move(row));
    AFEX_COV(*env_, kRowBase + 1);
  }
  if (libc.Ferror(stream) != 0) {
    AFEX_COV(*env_, kRowRecovery + 3);
    libc.Fclose(stream);
    LogError(std::string("I/O error reading table ").append(table));
    return -1;
  }
  libc.Fclose(stream);
  AFEX_COV(*env_, kRowBase + 2);
  CacheStore(table, rows);
  return 0;
}

int MiniDb::StoreTable(std::string_view table, const std::vector<Row>& rows) {
  StackFrame frame(*env_, "store_table");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kRowBase + 3);

  // Write to a temp file then rename, so a failed store never destroys the
  // old table image.
  std::string temp = TablePath(table) + ".tmp";
  int fd = libc.Open(temp, kWrOnly | kCreate | kTrunc);
  if (fd < 0) {
    AFEX_COV(*env_, kRowRecovery + 4);
    LogError(std::string("cannot create temp file for ").append(table));
    return -1;
  }
  bool write_failed = libc.Write(fd, "MINIDB1\n") < 0;
  std::string record;
  for (const Row& row : rows) {
    if (write_failed) {
      break;
    }
    record.clear();
    record += std::to_string(row.key);
    record += '=';
    record += row.value;
    record += '\n';
    write_failed = libc.Write(fd, record) < 0;
  }
  if (write_failed) {
    AFEX_COV(*env_, kRowRecovery + 5);
    libc.Close(fd);
    libc.Unlink(temp);
    CacheInvalidate(table);
    LogError(std::string("write failed while storing ").append(table));
    return -1;
  }
  if (libc.Close(fd) != 0) {
    AFEX_COV(*env_, kRowRecovery + 5);
    libc.Unlink(temp);
    CacheInvalidate(table);
    LogError(std::string("close failed while storing ").append(table));
    return -1;
  }
  if (libc.Rename(temp, TablePath(table)) != 0) {
    AFEX_COV(*env_, kRowRecovery + 4);
    libc.Unlink(temp);
    CacheInvalidate(table);
    LogError(std::string("rename failed while storing ").append(table));
    return -1;
  }
  AFEX_COV(*env_, kRowBase + 4);
  CacheStore(table, rows);
  return 0;
}

int MiniDb::Checkpoint() {
  StackFrame frame(*env_, "checkpoint");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kCheckpointBase + 0);
  if (libc.MutexLock(kEngineMutex) != 0) {
    AFEX_COV(*env_, kCheckpointRecovery + 0);
    LogError("cannot take engine lock for checkpoint");
    return -1;
  }

  // Flush: close and reopen the WAL truncated.
  if (wal_fd_ >= 0) {
    if (libc.Close(wal_fd_) != 0) {
      AFEX_COV(*env_, kCheckpointRecovery + 0);
      wal_fd_ = -1;
      libc.MutexUnlock(kEngineMutex);
      LogError("checkpoint: WAL close failed");
      return -1;
    }
    wal_fd_ = -1;
  }
  int fd = libc.Open(kWalPath, kWrOnly | kCreate | kTrunc);
  if (fd < 0) {
    AFEX_COV(*env_, kCheckpointRecovery + 1);
    libc.MutexUnlock(kEngineMutex);
    LogError("checkpoint: cannot reopen WAL");
    return -1;
  }
  // Position at the (now empty) end, verifying the truncation took effect.
  if (libc.Lseek(fd, 0, 2) != 0) {
    AFEX_COV(*env_, kCheckpointRecovery + 2);
    libc.Close(fd);
    wal_fd_ = -1;
    libc.MutexUnlock(kEngineMutex);
    LogError("checkpoint: WAL not empty after truncation");
    return -1;
  }
  wal_fd_ = fd;
  wal_records_ = 0;
  libc.MutexUnlock(kEngineMutex);
  AFEX_COV(*env_, kCheckpointBase + 1);
  return 0;
}

int MiniDb::Recover() {
  StackFrame frame(*env_, "wal_recover");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kRecoverBase + 0);

  uint64_t stream = libc.Fopen(kWalPath, "r");
  if (stream == 0) {
    AFEX_COV(*env_, kRecoverRecovery + 0);
    LogError("recover: cannot open WAL");
    return -1;
  }
  std::string line;
  int applied = 0;
  while (libc.Fgets(stream, line)) {
    // Record format: op|table|key|value
    std::vector<std::string_view> parts = SplitViews(Trim(line), '|');
    if (parts.size() < 3) {
      AFEX_COV(*env_, kRecoverRecovery + 1);
      continue;  // torn record at the tail is expected after a crash
    }
    std::vector<Row> rows;
    if (LoadTable(parts[1], rows) != 0) {
      AFEX_COV(*env_, kRecoverRecovery + 2);
      libc.Fclose(stream);
      return -1;
    }
    bool ok = false;
    int64_t key = libc.Strtol(parts[2], ok);
    if (!ok) {
      continue;
    }
    auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) { return r.key == key; });
    if (parts[0] == "ins" && parts.size() >= 4) {
      if (it == rows.end()) {
        rows.push_back(Row{key, std::string(parts[3])});
      } else {
        it->value = parts[3];
      }
    } else if (parts[0] == "del" && it != rows.end()) {
      rows.erase(it);
    }
    if (StoreTable(parts[1], rows) != 0) {
      AFEX_COV(*env_, kRecoverRecovery + 3);
      libc.Fclose(stream);
      return -1;
    }
    ++applied;
    AFEX_COV(*env_, kRecoverBase + 1);
  }
  if (libc.Ferror(stream) != 0) {
    AFEX_COV(*env_, kRecoverRecovery + 4);
    libc.Fclose(stream);
    LogError("recover: WAL read error");
    return -1;
  }
  libc.Fclose(stream);
  AFEX_COV(*env_, kRecoverBase + 2);
  return applied >= 0 ? 0 : -1;
}

}  // namespace minidb
}  // namespace afex
