// Server half of MiniDb: bootstrap (error-message catalog, Bug 2), the
// query layer on top of the storage engine, and error logging.
#include <algorithm>

#include "injection/libc_profile.h"
#include "sim/crash.h"
#include "sim/env.h"
#include "sim/simlibc.h"
#include "targets/minidb/minidb.h"

namespace afex {
namespace minidb {

namespace {
constexpr char kErrmsgPath[] = "/db/errmsg.sys";
constexpr char kConfigPath[] = "/db/my.cnf";
constexpr char kWalPath[] = "/db/wal.log";
constexpr char kLogPath[] = "/db/server.log";
}  // namespace

void InstallFixture(SimEnv& env, size_t test_id) {
  env.AddDir("/db");
  // Config size and pool count vary per test: bootstrap's call numbers
  // shift accordingly, like a real server whose startup I/O depends on its
  // configuration. Reused build buffer: this runs before every test.
  thread_local std::string config;
  config.clear();
  config += "pool=";
  config += std::to_string(1 + test_id % 3);
  config += '\n';
  config.append((test_id % 6) * 64, '#');
  env.AddFile(kConfigPath, config);
  env.AddFile(kErrmsgPath,
              "001 syntax error\n"
              "002 table not found\n"
              "003 duplicate key\n"
              "004 I/O error\n"
              "005 out of memory\n");
  env.AddFile(kWalPath, "");
  env.AddFile(kLogPath, "");
}

int MiniDb::Bootstrap() {
  StackFrame frame(*env_, "init_server_components");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kBootBase + 0);

  // ---- configuration file ----
  // Read in fixed-size chunks; the file's size (fixture-dependent) decides
  // how many read() calls happen before anything else. A missing or
  // unreadable config degrades to defaults (graceful).
  long pool_count = 1;
  {
    StackFrame f(*env_, "read_config");
    int fd = libc.Open(kConfigPath, kRdOnly);
    if (fd < 0) {
      AFEX_COV(*env_, kBootRecovery + 6);
      LogError("cannot open my.cnf; using defaults");
    } else {
      std::string config;
      while (true) {
        // Read appends into the accumulating buffer directly.
        long n = libc.Read(fd, config, 64);
        if (n < 0) {
          AFEX_COV(*env_, kBootRecovery + 6);
          LogError("error reading my.cnf; using defaults");
          config.clear();
          break;
        }
        if (n == 0) {
          break;
        }
      }
      libc.Close(fd);
      size_t pos = config.find("pool=");
      if (pos != std::string::npos) {
        bool ok = false;
        size_t end = config.find('\n', pos);
        long parsed = libc.Strtol(
            std::string_view(config).substr(
                pos + 5, end == std::string::npos ? std::string_view::npos : end - pos - 5),
            ok);
        if (ok && parsed >= 1 && parsed <= 16) {
          pool_count = parsed;
        } else {
          AFEX_COV(*env_, kBootRecovery + 7);
          LogError("bad pool setting; using default");
        }
      }
    }
  }

  // Core server allocations: datadir path, connection pools (grown once).
  // Any failure here is correctly detected and aborts startup cleanly.
  uint64_t datadir = libc.Strdup("/db");
  if (datadir == 0) {
    AFEX_COV(*env_, kBootRecovery + 6);
    return -1;  // cannot even log: the log path lives under datadir
  }
  std::vector<uint64_t> pools;
  for (long i = 0; i < pool_count; ++i) {
    uint64_t pool = libc.Calloc(8, 32);
    if (pool == 0) {
      AFEX_COV(*env_, kBootRecovery + 7);
      LogError("out of memory allocating connection pool");
      for (uint64_t p : pools) {
        libc.Free(p);
      }
      libc.Free(datadir);
      return -1;
    }
    pools.push_back(pool);
  }
  uint64_t grown = libc.Realloc(pools.front(), 512);
  if (grown == 0) {
    AFEX_COV(*env_, kBootRecovery + 8);
    LogError("out of memory growing connection pool");
    for (size_t i = 1; i < pools.size(); ++i) {
      libc.Free(pools[i]);
    }
    libc.Free(datadir);
    return -1;
  }
  pools.front() = grown;
  for (uint64_t p : pools) {
    libc.Free(p);
  }
  libc.Free(datadir);

  // ---- error-message catalog (Bug 2, MySQL #25097) ----
  {
    StackFrame f(*env_, "init_errmessage");
    AFEX_COV(*env_, kBootBase + 1);
    std::string data;
    int fd = libc.Open(kErrmsgPath, kRdOnly);
    if (fd < 0) {
      // Correct recovery: the failure is detected and logged...
      AFEX_COV(*env_, kBootRecovery + 0);
      LogError("cannot open errmsg.sys");
    } else {
      long n = libc.Read(fd, data, 4096);
      if (n < 0) {
        AFEX_COV(*env_, kBootRecovery + 1);
        LogError("cannot read errmsg.sys");
      } else {
        errmsg_handle_ = libc.Malloc(data.size() + 1);
        if (errmsg_handle_ != 0) {
          env_->SetHandlePayload(errmsg_handle_, data);
        } else {
          AFEX_COV(*env_, kBootRecovery + 2);
          LogError("out of memory loading errmsg.sys");
        }
      }
      libc.Close(fd);
    }
    // ...but the server then parses the message buffer regardless of
    // whether the read initialized it — NULL dereference when it did not.
    StackFrame parse(*env_, "parse_errmsgs");
    AFEX_COV(*env_, kBootBase + 2);
    const std::string& messages = env_->HandlePayload(
        env_->Deref(errmsg_handle_, "errmsg message buffer"));
    size_t count = static_cast<size_t>(std::count(messages.begin(), messages.end(), '\n'));
    if (count == 0) {
      AFEX_COV(*env_, kBootRecovery + 3);
      LogError("errmsg.sys contains no messages");
    }
  }

  // ---- open the WAL for appending ----
  {
    StackFrame f(*env_, "open_wal");
    AFEX_COV(*env_, kBootBase + 3);
    wal_fd_ = libc.Open(kWalPath, kWrOnly | kCreate | kAppend);
    if (wal_fd_ < 0) {
      AFEX_COV(*env_, kBootRecovery + 4);
      LogError("cannot open WAL");
      return -1;
    }
  }
  AFEX_COV(*env_, kBootBase + 4);
  return 0;
}

std::string MiniDb::FormatError(int code) {
  StackFrame frame(*env_, "format_error");
  AFEX_COV(*env_, kBootBase + 5);
  const std::string& messages =
      env_->HandlePayload(env_->Deref(errmsg_handle_, "errmsg catalog"));
  std::string prefix = code < 10 ? "00" + std::to_string(code) : std::to_string(code);
  size_t pos = messages.find(prefix + " ");
  if (pos == std::string::npos) {
    AFEX_COV(*env_, kBootRecovery + 5);
    return "unknown error " + std::to_string(code);
  }
  size_t end = messages.find('\n', pos);
  return messages.substr(pos, end == std::string::npos ? messages.size() - pos : end - pos);
}

void MiniDb::LogError(std::string_view what) {
  StackFrame frame(*env_, "log_error");
  SimLibc& libc = env_->libc();
  // Logging must never take the server down: every failure here is
  // swallowed (the log line is simply lost).
  uint64_t stream = libc.Fopen(kLogPath, "a");
  if (stream == 0) {
    AFEX_COV(*env_, kQueryRecovery + 0);
    return;
  }
  std::string entry = "[ERROR] ";
  entry += what;
  entry += '\n';
  libc.Fwrite(stream, entry);
  libc.Fclose(stream);
}

int MiniDb::Insert(std::string_view table, const Row& row) {
  StackFrame frame(*env_, "handle_insert");
  AFEX_COV(*env_, kQueryBase + 0);
  std::vector<Row> rows;
  if (LoadTable(table, rows) != 0) {
    AFEX_COV(*env_, kQueryRecovery + 1);
    return -1;
  }
  auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) { return r.key == row.key; });
  if (it != rows.end()) {
    AFEX_COV(*env_, kQueryRecovery + 2);
    LogError(FormatError(3));  // duplicate key
    return -1;
  }
  std::string record = "ins|";
  record += table;
  record += '|';
  record += std::to_string(row.key);
  record += '|';
  record += row.value;
  if (AppendWal(record) != 0) {
    AFEX_COV(*env_, kQueryRecovery + 3);
    return -1;  // durability first: refuse un-logged writes
  }
  rows.push_back(row);
  if (StoreTable(table, rows) != 0) {
    // The operation is already WAL-logged; a failed table store would
    // leave table and log divergent. Like a production engine hitting an
    // I/O error past the commit point, deliberately abort rather than
    // serve inconsistent data.
    AFEX_COV(*env_, kQueryRecovery + 4);
    throw SimAbort("table/log divergence after logged insert");
  }
  AFEX_COV(*env_, kQueryBase + 1);
  return 0;
}

int MiniDb::Select(std::string_view table, int64_t key, Row& out) {
  StackFrame frame(*env_, "handle_select");
  AFEX_COV(*env_, kQueryBase + 2);
  std::vector<Row> rows;
  if (LoadTable(table, rows) != 0) {
    AFEX_COV(*env_, kQueryRecovery + 5);
    return -1;
  }
  auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) { return r.key == key; });
  if (it == rows.end()) {
    AFEX_COV(*env_, kQueryBase + 3);
    return 1;  // not found (not an error)
  }
  out = *it;
  AFEX_COV(*env_, kQueryBase + 4);
  return 0;
}

int MiniDb::Update(std::string_view table, const Row& row) {
  StackFrame frame(*env_, "handle_update");
  AFEX_COV(*env_, kQueryBase + 5);
  std::vector<Row> rows;
  if (LoadTable(table, rows) != 0) {
    AFEX_COV(*env_, kQueryRecovery + 6);
    return -1;
  }
  auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) { return r.key == row.key; });
  if (it == rows.end()) {
    AFEX_COV(*env_, kQueryRecovery + 7);
    LogError(FormatError(2));  // table/row not found
    return -1;
  }
  std::string record = "ins|";
  record += table;
  record += '|';
  record += std::to_string(row.key);
  record += '|';
  record += row.value;
  if (AppendWal(record) != 0) {
    return -1;
  }
  it->value = row.value;
  if (StoreTable(table, rows) != 0) {
    throw SimAbort("table/log divergence after logged update");
  }
  AFEX_COV(*env_, kQueryBase + 6);
  return 0;
}

int MiniDb::Delete(std::string_view table, int64_t key) {
  StackFrame frame(*env_, "handle_delete");
  AFEX_COV(*env_, kQueryBase + 7);
  std::vector<Row> rows;
  if (LoadTable(table, rows) != 0) {
    AFEX_COV(*env_, kQueryRecovery + 8);
    return -1;
  }
  auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) { return r.key == key; });
  if (it == rows.end()) {
    AFEX_COV(*env_, kQueryBase + 8);
    return 1;
  }
  std::string record = "del|";
  record += table;
  record += '|';
  record += std::to_string(key);
  if (AppendWal(record) != 0) {
    return -1;
  }
  rows.erase(it);
  if (StoreTable(table, rows) != 0) {
    throw SimAbort("table/log divergence after logged delete");
  }
  AFEX_COV(*env_, kQueryBase + 9);
  return 0;
}

}  // namespace minidb
}  // namespace afex
