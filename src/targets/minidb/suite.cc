#include "targets/minidb/suite.h"

#include <cassert>

#include "sim/env.h"
#include "sim/simlibc.h"
#include "targets/minidb/minidb.h"

namespace afex {
namespace minidb {
namespace {

// Family boundaries (0-based, half-open).
constexpr size_t kCreateEnd = 150;
constexpr size_t kInsertEnd = 350;
constexpr size_t kSelectEnd = 550;
constexpr size_t kUpdateEnd = 700;
constexpr size_t kDeleteEnd = 800;
constexpr size_t kWalEnd = 950;
constexpr size_t kRecoveryEnd = 1047;
// admin: 1047..1146

std::string ValueFor(size_t test_id, int64_t key) {
  return "v" + std::to_string(test_id % 97) + "_" + std::to_string(key);
}

int TestCreate(SimEnv& /*env*/, MiniDb& db, size_t id) {
  // Create between 1 and 3 tables; later ids also drop them.
  size_t tables = 1 + id % 3;
  for (size_t i = 0; i < tables; ++i) {
    std::string name = "t" + std::to_string(i);
    if (db.CreateTable(name) != 0 || !db.TableExists(name)) {
      return 1;
    }
  }
  if (id % 2 == 1) {
    if (db.DropTable("t0") != 0 || db.TableExists("t0")) {
      return 1;
    }
  }
  return 0;
}

int TestInsert(SimEnv& /*env*/, MiniDb& db, size_t id) {
  if (db.CreateTable("data") != 0) {
    return 1;
  }
  size_t rows = 1 + id % 20;
  for (size_t k = 1; k <= rows; ++k) {
    if (db.Insert("data", Row{static_cast<int64_t>(k), ValueFor(id, k)}) != 0) {
      return 1;
    }
  }
  // Duplicate insert must be rejected without corrupting the table.
  if (db.Insert("data", Row{1, "dup"}) != -1) {
    return 1;
  }
  Row out;
  if (db.Select("data", 1, out) != 0 || out.value != ValueFor(id, 1)) {
    return 1;
  }
  return 0;
}

int TestSelect(SimEnv& /*env*/, MiniDb& db, size_t id) {
  if (db.CreateTable("data") != 0) {
    return 1;
  }
  size_t rows = 2 + id % 15;
  for (size_t k = 1; k <= rows; ++k) {
    if (db.Insert("data", Row{static_cast<int64_t>(k), ValueFor(id, k)}) != 0) {
      return 1;
    }
  }
  for (size_t k = rows; k >= 1; --k) {
    Row out;
    if (db.Select("data", static_cast<int64_t>(k), out) != 0 || out.value != ValueFor(id, k)) {
      return 1;
    }
  }
  Row out;
  if (db.Select("data", 9999, out) != 1) {
    return 1;  // missing key must report not-found, not an error
  }
  return 0;
}

int TestUpdate(SimEnv& /*env*/, MiniDb& db, size_t id) {
  if (db.CreateTable("data") != 0) {
    return 1;
  }
  size_t rows = 1 + id % 10;
  for (size_t k = 1; k <= rows; ++k) {
    if (db.Insert("data", Row{static_cast<int64_t>(k), ValueFor(id, k)}) != 0) {
      return 1;
    }
  }
  if (db.Update("data", Row{1, "updated"}) != 0) {
    return 1;
  }
  Row out;
  if (db.Select("data", 1, out) != 0 || out.value != "updated") {
    return 1;
  }
  // Updating a missing row is a handled error.
  if (db.Update("data", Row{777, "x"}) != -1) {
    return 1;
  }
  return 0;
}

int TestDelete(SimEnv& /*env*/, MiniDb& db, size_t id) {
  if (db.CreateTable("data") != 0) {
    return 1;
  }
  size_t rows = 2 + id % 8;
  for (size_t k = 1; k <= rows; ++k) {
    if (db.Insert("data", Row{static_cast<int64_t>(k), ValueFor(id, k)}) != 0) {
      return 1;
    }
  }
  if (db.Delete("data", 1) != 0) {
    return 1;
  }
  Row out;
  if (db.Select("data", 1, out) != 1) {
    return 1;  // must be gone
  }
  if (db.Select("data", 2, out) != 0) {
    return 1;  // others must remain
  }
  return 0;
}

int TestWal(SimEnv& /*env*/, MiniDb& db, size_t id) {
  if (db.CreateTable("data") != 0) {
    return 1;
  }
  size_t before = 1 + id % 6;
  for (size_t k = 1; k <= before; ++k) {
    if (db.Insert("data", Row{static_cast<int64_t>(k), ValueFor(id, k)}) != 0) {
      return 1;
    }
  }
  if (db.wal_records() != before) {
    return 1;
  }
  if (db.Checkpoint() != 0 || db.wal_records() != 0) {
    return 1;
  }
  size_t after = 1 + id % 4;
  for (size_t k = 100; k < 100 + after; ++k) {
    if (db.Insert("data", Row{static_cast<int64_t>(k), ValueFor(id, k)}) != 0) {
      return 1;
    }
  }
  return db.wal_records() == after ? 0 : 1;
}

int TestRecovery(SimEnv& env, MiniDb& db, size_t id) {
  if (db.CreateTable("data") != 0) {
    return 1;
  }
  // Simulate a pre-crash WAL: records written but not yet in the table,
  // with a torn record at the tail (expected after a crash).
  size_t pending = 1 + id % 5;
  std::string wal;
  for (size_t k = 1; k <= pending; ++k) {
    wal += "ins|data|" + std::to_string(k) + "|" + ValueFor(id, k) + "\n";
  }
  wal += "ins|data";  // torn tail
  env.FindMutable("/db/wal.log")->content = wal;
  if (db.Recover() != 0) {
    return 1;
  }
  for (size_t k = 1; k <= pending; ++k) {
    Row out;
    if (db.Select("data", static_cast<int64_t>(k), out) != 0 || out.value != ValueFor(id, k)) {
      return 1;
    }
  }
  return 0;
}

int TestAdmin(SimEnv& /*env*/, MiniDb& db, size_t id) {
  if (db.CreateTable("meta") != 0) {
    return 1;
  }
  if (db.Checkpoint() != 0) {
    return 1;
  }
  // The catalog must resolve known error codes.
  std::string msg = db.FormatError(static_cast<int>(1 + id % 5));
  if (msg.find("error") == std::string::npos && msg.find("key") == std::string::npos &&
      msg.find("found") == std::string::npos && msg.find("memory") == std::string::npos) {
    return 1;
  }
  if (id % 3 == 0) {
    if (db.DropTable("meta") != 0 || db.TableExists("meta")) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

std::string TestFamily(size_t test_id) {
  if (test_id < kCreateEnd) {
    return "create";
  }
  if (test_id < kInsertEnd) {
    return "insert";
  }
  if (test_id < kSelectEnd) {
    return "select";
  }
  if (test_id < kUpdateEnd) {
    return "update";
  }
  if (test_id < kDeleteEnd) {
    return "delete";
  }
  if (test_id < kWalEnd) {
    return "wal";
  }
  if (test_id < kRecoveryEnd) {
    return "recovery";
  }
  return "admin";
}

TargetSuite MakeSuite() {
  TargetSuite suite;
  suite.name = "minidb";
  suite.num_tests = kNumTests;
  suite.total_blocks = kTotalBlocks;
  suite.recovery_base = kRecoveryBase;
  suite.functions = {"malloc", "calloc", "realloc", "strdup", "fopen",
                     "fclose", "fgets",  "ferror",  "open",   "close",
                     "read",   "write",  "lseek",   "stat",   "rename",
                     "unlink", "strtol", "pthread_mutex_lock", "pthread_mutex_unlock"};
  assert(suite.functions.size() == 19);
  suite.run_test = [](SimEnv& env, size_t test_id) {
    assert(test_id < kNumTests);
    InstallFixture(env, test_id);
    MiniDb db(env);
    if (db.Bootstrap() != 0) {
      return 1;
    }
    if (test_id < kCreateEnd) {
      return TestCreate(env, db, test_id);
    }
    if (test_id < kInsertEnd) {
      return TestInsert(env, db, test_id);
    }
    if (test_id < kSelectEnd) {
      return TestSelect(env, db, test_id);
    }
    if (test_id < kUpdateEnd) {
      return TestUpdate(env, db, test_id);
    }
    if (test_id < kDeleteEnd) {
      return TestDelete(env, db, test_id);
    }
    if (test_id < kWalEnd) {
      return TestWal(env, db, test_id);
    }
    if (test_id < kRecoveryEnd) {
      return TestRecovery(env, db, test_id);
    }
    return TestAdmin(env, db, test_id);
  };
  suite.step_budget = 300'000;
  return suite;
}

}  // namespace minidb
}  // namespace afex
