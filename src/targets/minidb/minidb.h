// MiniDb: the MySQL 5.1 stand-in — a small storage engine with a
// write-ahead log, table files, a global engine mutex, an error-message
// catalog, and a checkpoint/recover path. Its recovery code contains the
// two bugs AFEX found in real MySQL (paper §7.1):
//
//  Bug 1 (Fig. 6, MySQL #53268): mi_create-style table creation releases
//  THR_LOCK_myisam and *then* performs a final close; if that close fails,
//  control jumps to the shared error label which unlocks the mutex again —
//  double unlock, SIGABRT.
//
//  Bug 2 (MySQL #25097): bootstrap reads errmsg.sys; a failed read is
//  detected and logged (the recovery code itself is correct), but the
//  engine then proceeds to parse the message buffer that the failed read
//  never initialized — NULL dereference, SIGSEGV.
//
// Block id allocation: 0..(kRecoveryBase-1) normal, kRecoveryBase.. recovery.
#ifndef AFEX_TARGETS_MINIDB_MINIDB_H_
#define AFEX_TARGETS_MINIDB_MINIDB_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace afex {

class SimEnv;

namespace minidb {

// Compact block ids; total_blocks is calibrated so the full suite's
// aggregate coverage lands in the ~54% regime of paper Table 1.
inline constexpr uint32_t kTotalBlocks = 82;
inline constexpr uint32_t kRecoveryBase = 42;

// storage.cc blocks
inline constexpr uint32_t kCreateBase = 0;       // mi_create path, +0..2
inline constexpr uint32_t kWalBase = 4;          // write-ahead log, +0..1
inline constexpr uint32_t kRowBase = 8;          // row read/write, +0..4
inline constexpr uint32_t kCheckpointBase = 14;  // +0..1
inline constexpr uint32_t kRecoverBase = 17;     // +0..2
// server.cc blocks
inline constexpr uint32_t kBootBase = 21;        // bootstrap / errmsg, +0..5
inline constexpr uint32_t kQueryBase = 28;       // query execution, +0..9
inline constexpr uint32_t kAdminBase = 39;       // checkpoint/stats/drop, +0..1
// recovery blocks (ids >= kRecoveryBase)
inline constexpr uint32_t kCreateRecovery = kRecoveryBase + 0;      // +0..4
inline constexpr uint32_t kWalRecovery = kRecoveryBase + 5;         // +0..1
inline constexpr uint32_t kRowRecovery = kRecoveryBase + 7;         // +0..5
inline constexpr uint32_t kCheckpointRecovery = kRecoveryBase + 13; // +0..2
inline constexpr uint32_t kRecoverRecovery = kRecoveryBase + 16;    // +0..4
inline constexpr uint32_t kBootRecovery = kRecoveryBase + 21;       // +0..8
inline constexpr uint32_t kQueryRecovery = kRecoveryBase + 30;      // +0..8
inline constexpr uint32_t kAdminRecovery = kRecoveryBase + 39;      // +0

// A row is a key plus one value string.
struct Row {
  int64_t key = 0;
  std::string value;
};

// The storage engine. One instance per test; state lives in the SimEnv's
// virtual filesystem under /db.
class MiniDb {
 public:
  explicit MiniDb(SimEnv& env) : env_(&env) {}

  // Loads the error-message catalog and opens the WAL. Must be called
  // first. Returns 0 on success; crashes on Bug 2's path.
  int Bootstrap();

  // Creates a table file (mi_create path; contains Bug 1). Returns 0 on
  // success, -1 on (correctly handled) failure.
  int CreateTable(std::string_view name);
  bool TableExists(std::string_view name);
  int DropTable(std::string_view name);

  // Row operations; all WAL-logged.
  int Insert(std::string_view table, const Row& row);
  int Select(std::string_view table, int64_t key, Row& out);
  int Update(std::string_view table, const Row& row);
  int Delete(std::string_view table, int64_t key);

  // Flushes tables and truncates the WAL.
  int Checkpoint();
  // Replays the WAL into table files (crash recovery).
  int Recover();

  // Formats an engine error through the message catalog (Bug 2 derefs the
  // catalog buffer here / in Bootstrap's parse step).
  std::string FormatError(int code);

  size_t wal_records() const { return wal_records_; }

 private:
  int AppendWal(std::string_view record);
  int LoadTable(std::string_view table, std::vector<Row>& rows);
  int StoreTable(std::string_view table, const std::vector<Row>& rows);
  void LogError(std::string_view what);

  // Column-cached table images (the buffer-pool role of a real engine):
  // LoadTable parses a table file once and caches its rows as key/value
  // columns; later accesses materialize from the cache without re-opening
  // and re-parsing the file. StoreTable refreshes the entry on success; any
  // failed store/create/drop invalidates it, so the cache never diverges
  // from the durable image an injected fault left behind.
  struct ColumnTable {
    std::vector<int64_t> keys;
    std::vector<std::string> values;
  };
  void CacheStore(std::string_view table, const std::vector<Row>& rows);
  void CacheInvalidate(std::string_view table);

  SimEnv* env_;
  uint64_t errmsg_handle_ = 0;  // NULL when errmsg.sys could not be read
  int wal_fd_ = -1;
  size_t wal_records_ = 0;
  std::map<std::string, ColumnTable, std::less<>> table_cache_;
};

// Writes the /db fixture (directory, config, errmsg.sys, WAL) into a fresh
// env. `test_id` varies the config file's size and pool setting, so the
// call number at which each bootstrap libc call happens differs across
// tests — the natural per-test variability a real server exhibits.
void InstallFixture(SimEnv& env, size_t test_id = 0);

}  // namespace minidb
}  // namespace afex

#endif  // AFEX_TARGETS_MINIDB_MINIDB_H_
