// The MiniDb target suite: 1,147 generated tests grouped into families
// (create, insert, select, update, delete, WAL, recovery, admin), mirroring
// the paper's Phi_MySQL setup (§7: 1,147 tests x 19 functions x 100 call
// numbers = 2,179,300 faults). Family grouping by contiguous test-id range
// is deliberate: it gives the Xtest axis the neighbour-similarity structure
// the fitness-guided search exploits.
#ifndef AFEX_TARGETS_MINIDB_SUITE_H_
#define AFEX_TARGETS_MINIDB_SUITE_H_

#include <string>

#include "targets/target.h"

namespace afex {
namespace minidb {

inline constexpr size_t kNumTests = 1147;

TargetSuite MakeSuite();

// The family a 0-based test id belongs to: "create", "insert", "select",
// "update", "delete", "wal", "recovery", "admin".
std::string TestFamily(size_t test_id);

}  // namespace minidb
}  // namespace afex

#endif  // AFEX_TARGETS_MINIDB_SUITE_H_
