// TargetSuite: the contract every simulated system under test implements —
// a named test suite runnable one test at a time inside a SimEnv, plus the
// metadata the harness needs to define fault spaces (the functions the
// target calls) and to compute coverage percentages.
#ifndef AFEX_TARGETS_TARGET_H_
#define AFEX_TARGETS_TARGET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace afex {

class SimEnv;

struct TargetSuite {
  std::string name;
  // Number of tests in the default suite (the Xtest axis runs 1..num_tests).
  size_t num_tests = 0;
  // Instrumented basic blocks; ids are target-local, [0, total_blocks).
  uint32_t total_blocks = 0;
  // Blocks with id >= recovery_base are recovery/error-handling code
  // (0 = recovery blocks not marked).
  uint32_t recovery_base = 0;
  // libc functions for the Xfunc axis, in LibcProfile (category-grouped)
  // order — the order is part of the fault space's structure.
  std::vector<std::string> functions;
  // Runs one test (0-based); returns 0 on pass. May throw simulated
  // terminations; the harness catches them.
  std::function<int(SimEnv&, size_t)> run_test;
  // Watchdog budget per test.
  size_t step_budget = 1'000'000;
};

}  // namespace afex

#endif  // AFEX_TARGETS_TARGET_H_
