#include "injection/libc_profile.h"
#include "sim/env.h"
#include "sim/simlibc.h"
#include "targets/coreutils/utils.h"

namespace afex {
namespace coreutils {
namespace {

// Copies a file byte-for-byte through the fd API with EINTR retry — shared
// by cp and by mv's cross-filesystem fallback.
int CopyFile(SimEnv& env, std::string_view source, std::string_view dest,
             uint32_t base_block, uint32_t recovery_block) {
  StackFrame frame(env, "copy_file");
  SimLibc& libc = env.libc();
  AFEX_COV(env, base_block);
  int in = libc.Open(source, kRdOnly);
  if (in < 0) {
    AFEX_COV(env, recovery_block);
    return 1;
  }
  int out = libc.Open(dest, kWrOnly | kCreate | kTrunc);
  if (out < 0) {
    AFEX_COV(env, recovery_block + 1);
    libc.Close(in);
    return 1;
  }
  std::string chunk;
  while (true) {
    chunk.clear();  // reuses capacity; Read appends into it
    long n = libc.Read(in, chunk, 32);
    if (n < 0) {
      if (env.sim_errno() == sim_errno::kEINTR) {
        AFEX_COV(env, recovery_block + 2);
        continue;
      }
      AFEX_COV(env, recovery_block + 3);
      libc.Close(in);
      libc.Close(out);
      return 1;
    }
    if (n == 0) {
      break;
    }
    if (libc.Write(out, chunk) < 0) {
      AFEX_COV(env, recovery_block + 3);
      libc.Close(in);
      libc.Close(out);
      return 1;
    }
  }
  libc.Close(in);
  if (libc.Close(out) != 0) {
    // Close on the written file can report delayed I/O errors; data may be
    // lost, so this is a real failure.
    AFEX_COV(env, recovery_block + 4);
    return 1;
  }
  AFEX_COV(env, base_block + 1);
  return 0;
}

// True when source and dest live on different (simulated) filesystems —
// real mv detects this via rename() failing with EXDEV; the simulated
// filesystem namespaces devices by top-level directory.
bool CrossDevice(std::string_view a, std::string_view b) {
  auto top = [](std::string_view p) {
    size_t start = p.empty() || p[0] != '/' ? 0 : 1;
    size_t slash = p.find('/', start);
    return p.substr(0, slash == std::string_view::npos ? p.size() : slash);
  };
  return top(a) != top(b);
}

}  // namespace

int LnMain(SimEnv& env, std::string_view source, std::string_view dest, bool force,
           bool symbolic) {
  StackFrame frame(env, "ln_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kLnBase + 0);

  // Argument processing allocates two buffers (resolved source and dest
  // names), exactly like GNU ln's canonicalization path. Allocation failure
  // is fatal with the "serious" exit code 2 — distinct from operational
  // errors (exit 1), which expected-error tests check for.
  uint64_t source_buf = libc.Malloc(source.size() + 1);
  if (source_buf == 0) {
    AFEX_COV(env, kLnRecovery + 0);
    return 2;
  }
  uint64_t dest_buf = libc.Malloc(dest.size() + 1);
  if (dest_buf == 0) {
    AFEX_COV(env, kLnRecovery + 1);
    libc.Free(source_buf);
    return 2;
  }

  // Relative operands are resolved against the working directory, like GNU
  // ln's canonicalize step; a getcwd failure degrades to using the operand
  // as-is (the simulated filesystem accepts relative keys).
  if (!source.empty() && source[0] != '/') {
    uint64_t cwd = libc.Getcwd();
    if (cwd == 0) {
      AFEX_COV(env, kLnRecovery + 2);
    } else {
      libc.Free(cwd);
    }
  }

  StatBuf st;
  if (!symbolic && libc.Stat(source, st) != 0) {
    AFEX_COV(env, kLnRecovery + 2);
    libc.Free(source_buf);
    libc.Free(dest_buf);
    return 1;  // "No such file or directory"
  }

  // If the destination is an existing directory, link inside it.
  std::string target(dest);
  StatBuf dest_st;
  if (libc.Stat(dest, dest_st) == 0 && dest_st.is_dir) {
    AFEX_COV(env, kLnBase + 1);
    size_t slash = source.find_last_of('/');
    target += '/';
    target += slash == std::string_view::npos ? source : source.substr(slash + 1);
  } else if (env.Exists(target)) {
    if (!force) {
      AFEX_COV(env, kLnRecovery + 3);
      libc.Free(source_buf);
      libc.Free(dest_buf);
      return 1;  // "File exists"
    }
    AFEX_COV(env, kLnBase + 2);
    if (libc.Unlink(target) != 0) {
      AFEX_COV(env, kLnRecovery + 4);
      libc.Free(source_buf);
      libc.Free(dest_buf);
      return 1;
    }
  }

  {
    StackFrame f(env, symbolic ? "ln_make_symlink" : "ln_make_hardlink");
    AFEX_COV(env, kLnBase + 3);
    int fd = libc.Open(target, kWrOnly | kCreate | kTrunc);
    if (fd < 0) {
      AFEX_COV(env, kLnRecovery + 5);
      libc.Free(source_buf);
      libc.Free(dest_buf);
      return 1;
    }
    // A hard link shares the source's content; a symlink stores the
    // referent path (readable by the tests as "-> path").
    std::string payload;
    if (symbolic) {
      payload = "-> ";
      payload += source;
    } else {
      const SimEnv::FileNode* node = env.Find(source);
      payload = node != nullptr ? node->content : "";
    }
    if (libc.Write(fd, payload) < 0) {
      libc.Close(fd);
      libc.Free(source_buf);
      libc.Free(dest_buf);
      return 1;
    }
    libc.Close(fd);
  }

  libc.Free(source_buf);
  libc.Free(dest_buf);
  AFEX_COV(env, kLnBase + 4);
  return 0;
}

int MvMain(SimEnv& env, std::string_view source, std::string_view dest, bool force) {
  StackFrame frame(env, "mv_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kMvBase + 0);

  // Same two-buffer argument canonicalization as ln.
  uint64_t source_buf = libc.Malloc(source.size() + 1);
  if (source_buf == 0) {
    AFEX_COV(env, kMvRecovery + 0);
    return 2;
  }
  uint64_t dest_buf = libc.Malloc(dest.size() + 1);
  if (dest_buf == 0) {
    AFEX_COV(env, kMvRecovery + 1);
    libc.Free(source_buf);
    return 2;
  }
  auto cleanup = [&] {
    libc.Free(source_buf);
    libc.Free(dest_buf);
  };

  StatBuf st;
  if (libc.Stat(source, st) != 0) {
    AFEX_COV(env, kMvRecovery + 2);
    cleanup();
    return 1;  // "cannot stat: No such file or directory"
  }

  std::string target(dest);
  StatBuf dest_st;
  if (libc.Stat(dest, dest_st) == 0) {
    if (dest_st.is_dir) {
      AFEX_COV(env, kMvBase + 1);
      size_t slash = source.find_last_of('/');
      target += '/';
      target += slash == std::string_view::npos ? source : source.substr(slash + 1);
    } else if (!force) {
      AFEX_COV(env, kMvRecovery + 3);
      cleanup();
      return 1;
    }
  }

  if (CrossDevice(source, target)) {
    // rename() would fail with EXDEV: fall back to copy + unlink, the
    // classic mv recovery path.
    StackFrame f(env, "mv_copy_fallback");
    AFEX_COV(env, kMvBase + 2);
    if (CopyFile(env, source, target, kMvBase + 3, kMvRecovery + 4) != 0) {
      cleanup();
      return 1;
    }
    if (libc.Unlink(source) != 0) {
      AFEX_COV(env, kMvRecovery + 5);
      cleanup();
      return 1;  // copy succeeded but source lingers: still an error
    }
    cleanup();
    AFEX_COV(env, kMvBase + 5);
    return 0;
  }

  {
    StackFrame f(env, "mv_rename");
    AFEX_COV(env, kMvBase + 6);
    if (libc.Rename(source, target) != 0) {
      AFEX_COV(env, kMvRecovery + 4);
      cleanup();
      return 1;
    }
  }
  cleanup();
  AFEX_COV(env, kMvBase + 7);
  return 0;
}

int CpMain(SimEnv& env, std::string_view source, std::string_view dest) {
  StackFrame frame(env, "cp_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kCpBase + 0);

  // cp sizes its copy buffer from the source's size.
  StatBuf st;
  if (libc.Stat(source, st) != 0) {
    AFEX_COV(env, kCpRecovery + 0);
    return 1;
  }
  uint64_t buffer = libc.Calloc(1, st.size + 1);
  if (buffer == 0) {
    AFEX_COV(env, kCpRecovery + 1);
    return 2;
  }
  int rc = CopyFile(env, source, dest, kCpBase + 1, kCpRecovery + 2);
  libc.Free(buffer);
  if (rc == 0) {
    AFEX_COV(env, kCpBase + 3);
  }
  return rc;
}

int RmMain(SimEnv& env, const std::vector<std::string>& paths, bool force) {
  StackFrame frame(env, "rm_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kRmBase + 0);
  int exit_code = 0;
  for (const std::string& path : paths) {
    AFEX_COV(env, kRmBase + 1);
    if (libc.Unlink(path) != 0) {
      if (force && env.sim_errno() == sim_errno::kENOENT) {
        AFEX_COV(env, kRmRecovery + 0);  // -f silences missing operands
        continue;
      }
      AFEX_COV(env, kRmRecovery + 1);
      exit_code = 1;
    }
  }
  if (exit_code == 0) {
    AFEX_COV(env, kRmBase + 2);
  }
  return exit_code;
}

int TouchMain(SimEnv& env, std::string_view path) {
  StackFrame frame(env, "touch_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kTouchBase + 0);
  int fd = libc.Open(path, kWrOnly | kCreate | kAppend);
  if (fd < 0) {
    AFEX_COV(env, kTouchRecovery + 0);
    return 1;
  }
  if (libc.Close(fd) != 0) {
    return 1;
  }
  AFEX_COV(env, kTouchBase + 1);
  return 0;
}

int MkdirMain(SimEnv& env, std::string_view path, bool parents) {
  StackFrame frame(env, "mkdir_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kMkdirBase + 0);
  if (parents) {
    AFEX_COV(env, kMkdirBase + 1);
    // Create each prefix, tolerating already-existing components.
    size_t pos = 1;
    while (true) {
      size_t slash = path.find('/', pos);
      std::string_view prefix = slash == std::string_view::npos ? path : path.substr(0, slash);
      if (!env.IsDir(prefix)) {
        if (libc.Mkdir(prefix) != 0 && !env.IsDir(prefix)) {
          AFEX_COV(env, kMkdirRecovery + 0);
          return 1;
        }
      }
      if (slash == std::string_view::npos) {
        break;
      }
      pos = slash + 1;
    }
    AFEX_COV(env, kMkdirBase + 2);
    return 0;
  }
  if (libc.Mkdir(path) != 0) {
    AFEX_COV(env, kMkdirRecovery + 0);
    return 1;
  }
  AFEX_COV(env, kMkdirBase + 3);
  return 0;
}

}  // namespace coreutils
}  // namespace afex
