// The coreutils target suite: 29 tests over 12 simulated utilities,
// mirroring the paper's Phi_coreutils setup (§7: 29 tests x 19 libc
// functions x call numbers {0,1,2} = 1,653 faults, where call 0 means "no
// injection").
#ifndef AFEX_TARGETS_COREUTILS_SUITE_H_
#define AFEX_TARGETS_COREUTILS_SUITE_H_

#include <string>
#include <vector>

#include "targets/target.h"

namespace afex {
namespace coreutils {

// Number of tests in the default suite.
inline constexpr size_t kNumTests = 29;

// Builds the suite. Deterministic; cheap to call.
TargetSuite MakeSuite();

// The utility each test exercises ("ls", "ln", "mv", ...), indexed by
// 0-based test id. Used by the Table 6 bench to identify ln/mv tests and by
// the Fig. 1 bench to select the ls rows.
const std::vector<std::string>& TestUtilities();

// 0-based ids of the tests exercising `utility`.
std::vector<size_t> TestsForUtility(const std::string& utility);

// The 9 libc functions that ln and mv actually call — the trimmed Xfunc
// axis of the Table 6 "domain knowledge" experiment.
std::vector<std::string> LnMvFunctions();

}  // namespace coreutils
}  // namespace afex

#endif  // AFEX_TARGETS_COREUTILS_SUITE_H_
