#include "targets/coreutils/suite.h"

#include <cassert>

#include "sim/env.h"
#include "sim/simlibc.h"
#include "targets/coreutils/utils.h"

namespace afex {
namespace coreutils {
namespace {

// Every test writes utility output to the simulated stdout.
void CommonFixture(SimEnv& env) { env.AddFile("/dev/stdout", ""); }

std::string Stdout(SimEnv& env) {
  const SimEnv::FileNode* node = env.Find("/dev/stdout");
  return node == nullptr ? "" : node->content;
}

bool FileHas(SimEnv& env, const std::string& path, const std::string& content) {
  const SimEnv::FileNode* node = env.Find(path);
  return node != nullptr && !node->is_dir && node->content == content;
}

// ---- the 29 tests; each returns 0 on pass ----

int TestLsEmpty(SimEnv& env) {
  env.AddDir("/empty");
  int rc = LsMain(env, "/empty", false, false);
  return (rc == 0 && Stdout(env).empty()) ? 0 : 1;
}

int TestLsFiles(SimEnv& env) {
  env.AddDir("/d");
  env.AddFile("/d/alpha", "1");
  env.AddFile("/d/beta", "22");
  env.AddFile("/d/gamma", "333");
  int rc = LsMain(env, "/d", false, false);
  std::string out = Stdout(env);
  bool listed = out.find("alpha\n") != std::string::npos &&
                out.find("beta\n") != std::string::npos &&
                out.find("gamma\n") != std::string::npos;
  return (rc == 0 && listed) ? 0 : 1;
}

int TestLsLong(SimEnv& env) {
  env.AddDir("/d");
  env.AddFile("/d/file", "12345");
  env.AddDir("/d/sub");
  int rc = LsMain(env, "/d", true, false);
  std::string out = Stdout(env);
  bool sizes = out.find("- 5 file\n") != std::string::npos &&
               out.find("d 0 sub\n") != std::string::npos;
  return (rc == 0 && sizes) ? 0 : 1;
}

int TestLsSorted(SimEnv& env) {
  env.AddDir("/d");
  env.AddFile("/d/zeta", "");
  env.AddFile("/d/alpha", "");
  env.AddFile("/d/mid", "");
  int rc = LsMain(env, "/d", false, true);
  std::string out = Stdout(env);
  size_t a = out.find("alpha");
  size_t m = out.find("mid");
  size_t z = out.find("zeta");
  bool sorted = a != std::string::npos && m != std::string::npos && z != std::string::npos &&
                a < m && m < z;
  return (rc == 0 && sorted) ? 0 : 1;
}

int TestLsMissing(SimEnv& env) {
  int rc = LsMain(env, "/no/such/dir", false, false);
  return rc == 2 ? 0 : 1;  // ls must report the error with its exit code
}

int TestLnSimple(SimEnv& env) {
  env.AddDir("/src");
  env.AddFile("/src/f", "data");
  int rc = LnMain(env, "/src/f", "/src/g", false, false);
  return (rc == 0 && FileHas(env, "/src/g", "data")) ? 0 : 1;
}

int TestLnForce(SimEnv& env) {
  env.AddDir("/src");
  env.AddFile("/src/f", "new");
  env.AddFile("/src/g", "old");
  int rc = LnMain(env, "/src/f", "/src/g", true, false);
  return (rc == 0 && FileHas(env, "/src/g", "new")) ? 0 : 1;
}

int TestLnIntoDir(SimEnv& env) {
  env.AddDir("/src");
  env.AddDir("/dir");
  env.AddFile("/src/f", "x");
  int rc = LnMain(env, "/src/f", "/dir", false, false);
  return (rc == 0 && FileHas(env, "/dir/f", "x")) ? 0 : 1;
}

int TestLnSymbolic(SimEnv& env) {
  env.AddDir("/src");
  env.AddFile("/src/f", "payload");
  int rc = LnMain(env, "/src/f", "/src/link", false, true);
  return (rc == 0 && FileHas(env, "/src/link", "-> /src/f")) ? 0 : 1;
}

int TestLnMissingSource(SimEnv& env) {
  // Expected operational error (exit 1). An injected allocation failure
  // exits 2 instead, which this test correctly flags as a failure.
  int rc = LnMain(env, "/nope", "/dest", false, false);
  return rc == 1 ? 0 : 1;
}

int TestLnExistingDest(SimEnv& env) {
  env.AddDir("/src");
  env.AddFile("/src/f", "a");
  env.AddFile("/src/g", "b");
  int rc = LnMain(env, "/src/f", "/src/g", false, false);
  return (rc == 1 && FileHas(env, "/src/g", "b")) ? 0 : 1;
}

int TestLnRelative(SimEnv& env) {
  env.AddFile("work/f", "rel");
  int rc = LnMain(env, "work/f", "work/g", false, false);
  return (rc == 0 && FileHas(env, "work/g", "rel")) ? 0 : 1;
}

int TestMvSimple(SimEnv& env) {
  env.AddDir("/a");
  env.AddFile("/a/f", "move me");
  int rc = MvMain(env, "/a/f", "/a/g", false);
  return (rc == 0 && !env.Exists("/a/f") && FileHas(env, "/a/g", "move me")) ? 0 : 1;
}

int TestMvOverwrite(SimEnv& env) {
  env.AddDir("/a");
  env.AddFile("/a/f", "new");
  env.AddFile("/a/g", "old");
  int rc = MvMain(env, "/a/f", "/a/g", true);
  return (rc == 0 && !env.Exists("/a/f") && FileHas(env, "/a/g", "new")) ? 0 : 1;
}

int TestMvIntoDir(SimEnv& env) {
  env.AddDir("/a");
  env.AddDir("/a/dir");
  env.AddFile("/a/f", "x");
  int rc = MvMain(env, "/a/f", "/a/dir", false);
  return (rc == 0 && !env.Exists("/a/f") && FileHas(env, "/a/dir/f", "x")) ? 0 : 1;
}

int TestMvCrossDevice(SimEnv& env) {
  env.AddDir("/a");
  env.AddDir("/mnt");
  env.AddFile("/a/f", "cross-device payload");
  int rc = MvMain(env, "/a/f", "/mnt/f", false);
  return (rc == 0 && !env.Exists("/a/f") && FileHas(env, "/mnt/f", "cross-device payload")) ? 0
                                                                                            : 1;
}

int TestMvMissingSource(SimEnv& env) {
  int rc = MvMain(env, "/nope", "/dest", false);
  return rc == 1 ? 0 : 1;
}

int TestMvDirRename(SimEnv& env) {
  env.AddDir("/a");
  env.AddDir("/a/sub");
  int rc = MvMain(env, "/a/sub", "/a/renamed", false);
  return (rc == 0 && env.IsDir("/a/renamed") && !env.Exists("/a/sub")) ? 0 : 1;
}

int TestMvExistingDestNoForce(SimEnv& env) {
  env.AddDir("/a");
  env.AddFile("/a/f", "new");
  env.AddFile("/a/g", "old");
  int rc = MvMain(env, "/a/f", "/a/g", false);
  return (rc == 1 && FileHas(env, "/a/g", "old") && env.Exists("/a/f")) ? 0 : 1;
}

int TestCpSimple(SimEnv& env) {
  env.AddDir("/a");
  env.AddFile("/a/src", "copy bytes");
  int rc = CpMain(env, "/a/src", "/a/dst");
  return (rc == 0 && FileHas(env, "/a/dst", "copy bytes") && FileHas(env, "/a/src", "copy bytes"))
             ? 0
             : 1;
}

int TestDuTree(SimEnv& env) {
  env.AddDir("/tree");
  env.AddFile("/tree/a", "12345");     // 5 bytes
  env.AddFile("/tree/b", "123");       // 3 bytes
  env.AddDir("/tree/sub");
  env.AddFile("/tree/sub/c", "1234");  // 4 bytes
  int rc = DuMain(env, "/tree");
  std::string out = Stdout(env);
  return (rc == 0 && out.find("12\t/tree") != std::string::npos) ? 0 : 1;
}

int TestCpMissing(SimEnv& env) {
  int rc = CpMain(env, "/nope", "/dst");
  return rc == 1 ? 0 : 1;
}

int TestRm(SimEnv& env) {
  env.AddDir("/a");
  env.AddFile("/a/x", "");
  env.AddFile("/a/y", "");
  int rc = RmMain(env, {"/a/x", "/a/y", "/a/missing"}, /*force=*/true);
  return (rc == 0 && !env.Exists("/a/x") && !env.Exists("/a/y")) ? 0 : 1;
}

int TestCat(SimEnv& env) {
  env.AddFile("/one", "first\n");
  env.AddFile("/two", "second\n");
  int rc = CatMain(env, {"/one", "/two"});
  return (rc == 0 && Stdout(env) == "first\nsecond\n") ? 0 : 1;
}

int TestTouch(SimEnv& env) {
  int rc = TouchMain(env, "/brand-new");
  return (rc == 0 && env.Exists("/brand-new")) ? 0 : 1;
}

int TestMkdirParents(SimEnv& env) {
  int rc = MkdirMain(env, "/x/y/z", /*parents=*/true);
  return (rc == 0 && env.IsDir("/x") && env.IsDir("/x/y") && env.IsDir("/x/y/z")) ? 0 : 1;
}

int TestHead(SimEnv& env) {
  env.AddFile("/lines", "l1\nl2\nl3\nl4\nl5\n");
  int rc = HeadMain(env, "/lines", 2);
  return (rc == 0 && Stdout(env) == "l1\nl2\n") ? 0 : 1;
}

int TestWc(SimEnv& env) {
  env.AddFile("/text", "hello world\nbye\n");
  int rc = WcMain(env, "/text");
  return (rc == 0 && Stdout(env).find("2 3 16 /text") != std::string::npos) ? 0 : 1;
}

int TestSort(SimEnv& env) {
  env.AddFile("/unsorted", "pear\napple\nmango\n");
  int rc = SortMain(env, "/unsorted");
  return (rc == 0 && Stdout(env) == "apple\nmango\npear\n") ? 0 : 1;
}

struct TestEntry {
  const char* utility;
  int (*body)(SimEnv&);
};

constexpr TestEntry kTests[kNumTests] = {
    {"ls", TestLsEmpty},          {"ls", TestLsFiles},
    {"ls", TestLsLong},           {"ls", TestLsSorted},
    {"ls", TestLsMissing},        {"ln", TestLnSimple},
    {"ln", TestLnForce},          {"ln", TestLnIntoDir},
    {"ln", TestLnSymbolic},       {"ln", TestLnMissingSource},
    {"ln", TestLnExistingDest},   {"ln", TestLnRelative},
    {"mv", TestMvSimple},         {"mv", TestMvOverwrite},
    {"mv", TestMvIntoDir},        {"mv", TestMvCrossDevice},
    {"mv", TestMvMissingSource},  {"mv", TestMvDirRename},
    {"mv", TestMvExistingDestNoForce}, {"cp", TestCpSimple},
    {"du", TestDuTree},           {"cp", TestCpMissing},
    {"rm", TestRm},               {"cat", TestCat},
    {"touch", TestTouch},         {"mkdir", TestMkdirParents},
    {"head", TestHead},           {"wc", TestWc},
    {"sort", TestSort},
};

}  // namespace

TargetSuite MakeSuite() {
  TargetSuite suite;
  suite.name = "coreutils";
  suite.num_tests = kNumTests;
  suite.total_blocks = kTotalBlocks;
  suite.recovery_base = kRecoveryBase;
  // 19 functions, category-grouped (memory, file, dir) as the profile
  // orders them — the Xfunc axis of Phi_coreutils.
  suite.functions = {"malloc", "calloc",  "realloc", "strdup",   "fopen",
                     "fclose", "fgets",   "open",    "close",    "read",
                     "write",  "stat",    "rename",  "unlink",   "opendir",
                     "readdir", "closedir", "chdir",  "getcwd"};
  assert(suite.functions.size() == 19);
  suite.run_test = [](SimEnv& env, size_t test_id) {
    assert(test_id < kNumTests);
    CommonFixture(env);
    return kTests[test_id].body(env);
  };
  suite.step_budget = 100'000;
  return suite;
}

const std::vector<std::string>& TestUtilities() {
  static const std::vector<std::string>* utilities = [] {
    auto* v = new std::vector<std::string>();
    for (const TestEntry& t : kTests) {
      v->emplace_back(t.utility);
    }
    return v;
  }();
  return *utilities;
}

std::vector<size_t> TestsForUtility(const std::string& utility) {
  std::vector<size_t> ids;
  const auto& utilities = TestUtilities();
  for (size_t i = 0; i < utilities.size(); ++i) {
    if (utilities[i] == utility) {
      ids.push_back(i);
    }
  }
  return ids;
}

std::vector<std::string> LnMvFunctions() {
  // ln and mv between them call exactly these nine libc functions.
  return {"malloc", "open", "close", "read", "write", "stat", "rename", "unlink", "getcwd"};
}

}  // namespace coreutils
}  // namespace afex
