// Simulated coreutils — small, real-world-shaped UNIX utilities running on
// SimLibc (the paper evaluates coreutils 8.1). Each utility follows the
// structure of its GNU counterpart: initialization, argument-driven work
// via libc calls, explicit error handling with distinct exit codes, and
// coverage annotations at basic-block granularity.
//
// Exit code conventions (mirroring GNU coreutils):
//   0 success, 1 operational error (missing file etc.), 2 serious failure
//   (out of memory, cannot write output).
//
// Block id allocation (coreutils target): compact per-utility ranges for
// normal blocks, recovery/error-handling blocks from kRecoveryBase up.
// total_blocks is calibrated so the default suite's aggregate coverage
// lands in the ~36% regime of paper Table 3 (the declared universe also
// counts uninstrumented cold code, exactly as gcov counts a whole binary).
#ifndef AFEX_TARGETS_COREUTILS_UTILS_H_
#define AFEX_TARGETS_COREUTILS_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace afex {

class SimEnv;

namespace coreutils {

// Ids [0, 52) are instrumented normal blocks; [52, 90) is the cold-code
// margin (normal code the 29 tests never reach, counted in the denominator
// exactly as gcov counts a whole binary); [90, 152) are the 62 recovery
// blocks, packed so RecoveryFraction's denominator is exact.
inline constexpr uint32_t kTotalBlocks = 152;
inline constexpr uint32_t kRecoveryBase = 90;

// Block range bases per utility (normal blocks, ids < kRecoveryBase).
inline constexpr uint32_t kLsBase = 0;      // +0..7
inline constexpr uint32_t kCatBase = 8;     // +0..3
inline constexpr uint32_t kHeadBase = 12;   // +0..2
inline constexpr uint32_t kWcBase = 15;     // +0..2
inline constexpr uint32_t kSortBase = 18;   // +0..3
inline constexpr uint32_t kDuBase = 22;     // +0..3
inline constexpr uint32_t kLnBase = 26;     // +0..4
inline constexpr uint32_t kMvBase = 31;     // +0..7 (incl. CopyFile base)
inline constexpr uint32_t kCpBase = 39;     // +0..3
inline constexpr uint32_t kRmBase = 43;     // +0..2
inline constexpr uint32_t kTouchBase = 46;  // +0..1
inline constexpr uint32_t kMkdirBase = 48;  // +0..3

// Recovery block bases (ids >= kRecoveryBase, packed without gaps).
inline constexpr uint32_t kLsRecovery = kRecoveryBase + 0;     // +0..7
inline constexpr uint32_t kCatRecovery = kRecoveryBase + 8;    // +0..5
inline constexpr uint32_t kHeadRecovery = kRecoveryBase + 14;  // +0..3
inline constexpr uint32_t kWcRecovery = kRecoveryBase + 18;    // +0..4
inline constexpr uint32_t kSortRecovery = kRecoveryBase + 23;  // +0..6
inline constexpr uint32_t kDuRecovery = kRecoveryBase + 30;    // +0..5
inline constexpr uint32_t kLnRecovery = kRecoveryBase + 36;    // +0..5
inline constexpr uint32_t kMvRecovery = kRecoveryBase + 42;    // +0..8 (incl. CopyFile)
inline constexpr uint32_t kCpRecovery = kRecoveryBase + 51;    // +0..6
inline constexpr uint32_t kRmRecovery = kRecoveryBase + 58;    // +0..1
inline constexpr uint32_t kTouchRecovery = kRecoveryBase + 60; // +0
inline constexpr uint32_t kMkdirRecovery = kRecoveryBase + 61; // +0

// ---- listing / text utilities (io_utils.cc) ----
int LsMain(SimEnv& env, std::string_view dir, bool long_format, bool sort_entries);
int CatMain(SimEnv& env, const std::vector<std::string>& files);
int HeadMain(SimEnv& env, std::string_view file, size_t max_lines);
int WcMain(SimEnv& env, std::string_view file);
int SortMain(SimEnv& env, std::string_view file);
int DuMain(SimEnv& env, std::string_view dir);

// ---- filesystem-mutating utilities (fs_utils.cc) ----
int LnMain(SimEnv& env, std::string_view source, std::string_view dest, bool force,
           bool symbolic);
int MvMain(SimEnv& env, std::string_view source, std::string_view dest, bool force);
int CpMain(SimEnv& env, std::string_view source, std::string_view dest);
int RmMain(SimEnv& env, const std::vector<std::string>& paths, bool force);
int TouchMain(SimEnv& env, std::string_view path);
int MkdirMain(SimEnv& env, std::string_view path, bool parents);

}  // namespace coreutils
}  // namespace afex

#endif  // AFEX_TARGETS_COREUTILS_UTILS_H_
