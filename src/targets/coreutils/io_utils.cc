#include <algorithm>

#include "injection/libc_profile.h"
#include "sim/env.h"
#include "sim/simlibc.h"
#include "targets/coreutils/utils.h"

namespace afex {
namespace coreutils {
namespace {

// Shared program prologue, as in GNU coreutils' main(): locale setup whose
// failure is tolerated (these are the paper's Fig. 1 "no error" columns).
void UtilityInit(SimEnv& env, uint32_t recovery_block) {
  StackFrame frame(env, "initialize_main");
  if (env.libc().Setlocale("") == 0) {
    AFEX_COV(env, recovery_block);  // degraded locale; carry on
  }
  long now = 0;
  (void)env.libc().ClockGettime(now);  // result unused; failure harmless
}

// Opens the simulated stdout stream; returns 0 on failure.
uint64_t OpenStdout(SimEnv& env) {
  StackFrame frame(env, "open_stdout");
  return env.libc().Fopen("/dev/stdout", "w");
}

}  // namespace

// Builds "prefix + operand + suffix" diagnostics without string_view
// concatenation gymnastics at every call site.
namespace {
std::string Diag(std::string_view prefix, std::string_view operand, std::string_view suffix) {
  std::string msg;
  msg.reserve(prefix.size() + operand.size() + suffix.size());
  msg += prefix;
  msg += operand;
  msg += suffix;
  return msg;
}
}  // namespace

int LsMain(SimEnv& env, std::string_view dir, bool long_format, bool sort_entries) {
  StackFrame frame(env, "ls_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kLsBase + 0);
  UtilityInit(env, kLsRecovery + 0);

  uint64_t out = OpenStdout(env);
  if (out == 0) {
    AFEX_COV(env, kLsRecovery + 1);
    return 2;
  }

  uint64_t dirp;
  {
    StackFrame f(env, "ls_open_directory");
    AFEX_COV(env, kLsBase + 1);
    dirp = libc.Opendir(dir);
  }
  if (dirp == 0) {
    AFEX_COV(env, kLsRecovery + 2);
    libc.Fwrite(out, Diag("ls: cannot access '", dir, "'\n"));
    libc.Fclose(out);
    return 2;
  }

  std::vector<std::string> entries;
  {
    StackFrame f(env, "ls_read_entries");
    AFEX_COV(env, kLsBase + 2);
    std::string name;
    env.set_sim_errno(0);
    while (libc.Readdir(dirp, name)) {
      entries.push_back(name);
      env.set_sim_errno(0);
    }
    if (env.sim_errno() == sim_errno::kEIO) {
      AFEX_COV(env, kLsRecovery + 3);
      libc.Fwrite(out, "ls: reading directory error\n");
      libc.Closedir(dirp);
      libc.Fclose(out);
      return 2;
    }
  }

  if (sort_entries) {
    StackFrame f(env, "ls_sort_entries");
    AFEX_COV(env, kLsBase + 3);
    // GNU ls allocates a sort vector; a failed allocation is fatal.
    uint64_t buffer = libc.Malloc(entries.size() * 8 + 8);
    if (buffer == 0) {
      AFEX_COV(env, kLsRecovery + 4);
      libc.Closedir(dirp);
      libc.Fclose(out);
      return 2;
    }
    std::sort(entries.begin(), entries.end());
    libc.Free(buffer);
  }

  int exit_code = 0;
  for (const std::string& e : entries) {
    StackFrame f(env, "ls_print_entry");
    AFEX_COV(env, kLsBase + 4);
    if (long_format) {
      AFEX_COV(env, kLsBase + 5);
      StatBuf st;
      std::string full = Diag(dir, "/", e);
      if (libc.Stat(full, st) != 0) {
        AFEX_COV(env, kLsRecovery + 5);
        libc.Fwrite(out, Diag("ls: cannot access '", full, "'\n"));
        exit_code = 1;  // keep listing the rest, like real ls
        continue;
      }
      libc.Fwrite(out, (st.is_dir ? std::string("d ") : std::string("- ")) +
                           std::to_string(st.size) + " " + e + "\n");
    } else {
      if (libc.Fwrite(out, e + "\n") == 0) {
        AFEX_COV(env, kLsRecovery + 6);
        libc.Closedir(dirp);
        libc.Fclose(out);
        return 2;  // write error on stdout is fatal
      }
    }
  }

  if (libc.Closedir(dirp) != 0) {
    AFEX_COV(env, kLsRecovery + 7);  // tolerated, like real ls
  }
  if (libc.Fclose(out) != 0) {
    AFEX_COV(env, kLsBase + 6);
    return 2;
  }
  AFEX_COV(env, kLsBase + 7);
  return exit_code;
}

int CatMain(SimEnv& env, const std::vector<std::string>& files) {
  StackFrame frame(env, "cat_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kCatBase + 0);
  UtilityInit(env, kCatRecovery + 0);

  uint64_t out = OpenStdout(env);
  if (out == 0) {
    AFEX_COV(env, kCatRecovery + 1);
    return 2;
  }

  int exit_code = 0;
  for (const std::string& file : files) {
    StackFrame f(env, "cat_one_file");
    AFEX_COV(env, kCatBase + 1);
    uint64_t in = libc.Fopen(file, "r");
    if (in == 0) {
      AFEX_COV(env, kCatRecovery + 2);
      libc.Fwrite(out, Diag("cat: ", file, ": No such file or directory\n"));
      exit_code = 1;
      continue;
    }
    std::string line;
    bool read_error = false;
    while (true) {
      bool got = libc.Fgets(in, line);
      if (!got) {
        if (libc.Ferror(in) != 0 && env.sim_errno() == sim_errno::kEINTR) {
          // Interrupted read: clear the indicator and retry once (classic
          // recovery path, as in GNU cat's interruptible read loop).
          AFEX_COV(env, kCatRecovery + 3);
          libc.Clearerr(in);
          got = libc.Fgets(in, line);
        }
        if (!got) {
          if (libc.Ferror(in) != 0) {
            read_error = true;
          }
          break;
        }
      }
      AFEX_COV(env, kCatBase + 2);
      if (libc.Fwrite(out, line) == 0 && !line.empty()) {
        AFEX_COV(env, kCatRecovery + 4);
        libc.Fclose(in);
        libc.Fclose(out);
        return 2;
      }
    }
    if (read_error) {
      AFEX_COV(env, kCatRecovery + 5);
      exit_code = 1;
    }
    libc.Fclose(in);
  }
  if (libc.Fclose(out) != 0) {
    return 2;
  }
  AFEX_COV(env, kCatBase + 3);
  return exit_code;
}

int HeadMain(SimEnv& env, std::string_view file, size_t max_lines) {
  StackFrame frame(env, "head_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kHeadBase + 0);
  UtilityInit(env, kHeadRecovery + 0);

  uint64_t out = OpenStdout(env);
  if (out == 0) {
    AFEX_COV(env, kHeadRecovery + 1);
    return 2;
  }
  uint64_t in = libc.Fopen(file, "r");
  if (in == 0) {
    AFEX_COV(env, kHeadRecovery + 2);
    libc.Fwrite(out, Diag("head: cannot open '", file, "'\n"));
    libc.Fclose(out);
    return 1;
  }
  std::string line;
  for (size_t i = 0; i < max_lines && libc.Fgets(in, line); ++i) {
    AFEX_COV(env, kHeadBase + 1);
    libc.Fwrite(out, line);
  }
  if (libc.Ferror(in) != 0) {
    AFEX_COV(env, kHeadRecovery + 3);
    libc.Fclose(in);
    libc.Fclose(out);
    return 1;
  }
  libc.Fclose(in);
  if (libc.Fclose(out) != 0) {
    return 2;
  }
  AFEX_COV(env, kHeadBase + 2);
  return 0;
}

int WcMain(SimEnv& env, std::string_view file) {
  StackFrame frame(env, "wc_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kWcBase + 0);
  UtilityInit(env, kWcRecovery + 0);

  uint64_t out = OpenStdout(env);
  if (out == 0) {
    AFEX_COV(env, kWcRecovery + 1);
    return 2;
  }
  int fd = libc.Open(file, kRdOnly);
  if (fd < 0) {
    AFEX_COV(env, kWcRecovery + 2);
    libc.Fwrite(out, Diag("wc: ", file, ": No such file or directory\n"));
    libc.Fclose(out);
    return 1;
  }
  size_t lines = 0;
  size_t words = 0;
  size_t bytes = 0;
  bool in_word = false;
  std::string chunk;
  while (true) {
    chunk.clear();  // reuses capacity; Read appends into it
    long n = libc.Read(fd, chunk, 64);
    if (n < 0) {
      if (env.sim_errno() == sim_errno::kEINTR) {
        AFEX_COV(env, kWcRecovery + 3);
        continue;  // retry interrupted read
      }
      AFEX_COV(env, kWcRecovery + 4);
      libc.Close(fd);
      libc.Fclose(out);
      return 1;
    }
    if (n == 0) {
      break;
    }
    AFEX_COV(env, kWcBase + 1);
    bytes += static_cast<size_t>(n);
    for (char c : chunk) {
      if (c == '\n') {
        ++lines;
      }
      bool space = c == ' ' || c == '\n' || c == '\t';
      if (!space && !in_word) {
        ++words;
        in_word = true;
      } else if (space) {
        in_word = false;
      }
    }
  }
  libc.Close(fd);
  libc.Fwrite(out, Diag(std::to_string(lines) + " " + std::to_string(words) + " " +
                            std::to_string(bytes) + " ",
                        file, "\n"));
  if (libc.Fclose(out) != 0) {
    return 2;
  }
  AFEX_COV(env, kWcBase + 2);
  return 0;
}

int SortMain(SimEnv& env, std::string_view file) {
  StackFrame frame(env, "sort_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kSortBase + 0);
  UtilityInit(env, kSortRecovery + 0);

  uint64_t out = OpenStdout(env);
  if (out == 0) {
    AFEX_COV(env, kSortRecovery + 1);
    return 2;
  }
  uint64_t in = libc.Fopen(file, "r");
  if (in == 0) {
    AFEX_COV(env, kSortRecovery + 2);
    libc.Fwrite(out, Diag("sort: cannot read: ", file, "\n"));
    libc.Fclose(out);
    return 2;
  }

  // Line buffer grows by doubling, as in GNU sort's initbuf/growbuf.
  uint64_t buffer = libc.Malloc(16);
  if (buffer == 0) {
    AFEX_COV(env, kSortRecovery + 3);
    libc.Fclose(in);
    libc.Fclose(out);
    return 2;
  }
  std::vector<std::string> lines;
  std::string line;
  size_t capacity = 16;
  while (libc.Fgets(in, line)) {
    AFEX_COV(env, kSortBase + 1);
    lines.push_back(line);
    if (lines.size() * 8 > capacity) {
      capacity *= 2;
      uint64_t grown = libc.Realloc(buffer, capacity);
      if (grown == 0) {
        AFEX_COV(env, kSortRecovery + 4);
        libc.Free(buffer);
        libc.Fclose(in);
        libc.Fclose(out);
        return 2;
      }
      buffer = grown;
    }
  }
  if (libc.Ferror(in) != 0) {
    AFEX_COV(env, kSortRecovery + 5);
    libc.Free(buffer);
    libc.Fclose(in);
    libc.Fclose(out);
    return 2;
  }
  libc.Fclose(in);
  std::sort(lines.begin(), lines.end());
  for (const std::string& l : lines) {
    AFEX_COV(env, kSortBase + 2);
    if (libc.Fwrite(out, l) == 0 && !l.empty()) {
      AFEX_COV(env, kSortRecovery + 6);
      libc.Free(buffer);
      libc.Fclose(out);
      return 2;
    }
  }
  libc.Free(buffer);
  if (libc.Fclose(out) != 0) {
    return 2;
  }
  AFEX_COV(env, kSortBase + 3);
  return 0;
}

int DuMain(SimEnv& env, std::string_view dir) {
  StackFrame frame(env, "du_main");
  SimLibc& libc = env.libc();
  AFEX_COV(env, kDuBase + 0);
  UtilityInit(env, kDuRecovery + 0);

  uint64_t out = OpenStdout(env);
  if (out == 0) {
    AFEX_COV(env, kDuRecovery + 1);
    return 2;
  }
  // Save the working directory so it can be restored after descending.
  uint64_t cwd = libc.Getcwd();
  if (cwd == 0) {
    AFEX_COV(env, kDuRecovery + 2);
    libc.Fwrite(out, "du: cannot get current directory\n");
    libc.Fclose(out);
    return 1;
  }
  std::string saved_cwd = env.HandlePayload(cwd);

  uint64_t dirp = libc.Opendir(dir);
  if (dirp == 0) {
    AFEX_COV(env, kDuRecovery + 3);
    libc.Fwrite(out, Diag("du: cannot read directory '", dir, "'\n"));
    libc.Free(cwd);
    libc.Fclose(out);
    return 1;
  }
  size_t total = 0;
  int exit_code = 0;
  std::string name;
  env.set_sim_errno(0);
  while (libc.Readdir(dirp, name)) {
    AFEX_COV(env, kDuBase + 1);
    std::string full = Diag(dir, "/", name);
    StatBuf st;
    if (libc.Stat(full, st) != 0) {
      AFEX_COV(env, kDuRecovery + 4);
      exit_code = 1;
      env.set_sim_errno(0);
      continue;
    }
    if (st.is_dir) {
      StackFrame f(env, "du_descend");
      AFEX_COV(env, kDuBase + 2);
      if (libc.Chdir(full) != 0) {
        AFEX_COV(env, kDuRecovery + 5);
        exit_code = 1;
      } else {
        uint64_t sub = libc.Opendir(full);
        if (sub != 0) {
          std::string sub_name;
          while (libc.Readdir(sub, sub_name)) {
            StatBuf sub_st;
            if (libc.Stat(full + "/" + sub_name, sub_st) == 0) {
              total += sub_st.size;
            }
          }
          libc.Closedir(sub);
        }
        libc.Chdir(saved_cwd);
      }
    } else {
      total += st.size;
    }
    env.set_sim_errno(0);
  }
  libc.Closedir(dirp);
  libc.Free(cwd);
  libc.Fwrite(out, Diag(std::to_string(total) + "\t", dir, "\n"));
  if (libc.Fclose(out) != 0) {
    return 2;
  }
  AFEX_COV(env, kDuBase + 3);
  return exit_code;
}

}  // namespace coreutils
}  // namespace afex
