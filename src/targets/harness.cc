#include "targets/harness.h"

#include <algorithm>

#include "injection/plan.h"
#include "sim/env.h"
#include "sim/process.h"

namespace afex {

TargetHarness::TargetHarness(TargetSuite suite, uint64_t seed, bool reference_sim_structures)
    : suite_(std::move(suite)),
      seed_(seed),
      reference_sim_(reference_sim_structures),
      coverage_(suite_.total_blocks, suite_.recovery_base) {}

FaultSpace TargetHarness::MakeSpace(size_t max_call, bool include_zero_call) const {
  std::vector<Axis> axes;
  axes.push_back(Axis::MakeInterval("test", 1, static_cast<int64_t>(suite_.num_tests)));
  axes.push_back(Axis::MakeSet("function", suite_.functions));
  axes.push_back(
      Axis::MakeInterval("call", include_zero_call ? 0 : 1, static_cast<int64_t>(max_call)));
  return FaultSpace(std::move(axes), suite_.name);
}

SimEnv& TargetHarness::EnvForRun(uint64_t seed, std::optional<SimEnv>& fresh) {
  if (reference_sim_) {
    fresh.emplace(SimEnvConfig{seed, suite_.step_budget, /*reference_structures=*/true});
    return *fresh;
  }
  if (!arena_.has_value()) {
    arena_.emplace(SimEnvConfig{seed, suite_.step_budget, /*reference_structures=*/false});
  } else {
    arena_->ResetForRun(seed, suite_.step_budget);
  }
  return *arena_;
}

TestOutcome TargetHarness::RunFault(const FaultSpace& space, const Fault& fault) {
  obs::PhaseTimer decode_timer(metrics_, obs::Phase::kSimDecode);
  InjectionPlan plan;
  if (reference_sim_) {
    // The seed decoded every fault from scratch (axis scans, label parsing,
    // linear profile search); the baseline keeps paying that per test.
    plan = DecodeFault(space, fault);
  } else {
    plan = decoder_.Decode(space, fault);
  }
  decode_timer.Finish();
  obs::PhaseTimer run_timer(metrics_, obs::Phase::kSimRun);
  std::optional<SimEnv> fresh;
  SimEnv& env =
      EnvForRun(seed_ ^ (0x9e3779b97f4a7c15ULL * (plan.test_id + 1)), fresh);
  if (plan.spec.has_value()) {
    env.bus().Arm(*plan.spec);
  }
  RunOutcome run =
      RunProgram(env, [&](SimEnv& e) { return suite_.run_test(e, plan.test_id); });
  run_timer.Finish();

  obs::PhaseTimer merge_timer(metrics_, obs::Phase::kSimFeedbackMerge);
  TestOutcome outcome;
  outcome.exit_code = run.exit_code;
  outcome.crashed = run.crashed;
  outcome.hung = run.hung;
  outcome.test_failed = run.exit_code != 0 || run.crashed || run.hung;
  outcome.fault_triggered = env.fault_triggered();
  outcome.injection_stack = env.TakeInjectionStack();
  // Single pass: merge the run's hits and collect the ones new to the
  // session (the coverage term of the impact metric, and what the campaign
  // journal re-seeds coverage from on resume).
  outcome.new_blocks_covered = coverage_.MergeCollect(env.coverage(), outcome.new_block_ids);
  std::sort(outcome.new_block_ids.begin(), outcome.new_block_ids.end());
  outcome.detail = run.termination_detail;
  ++tests_run_;
  sim_steps_ += env.steps_used();
  merge_timer.Finish();
  return outcome;
}

ExplorationSession::Runner TargetHarness::MakeRunner(const FaultSpace& space) {
  return [this, &space](const Fault& fault) { return RunFault(space, fault); };
}

size_t TargetHarness::RunSuiteWithoutInjection() {
  size_t failed = 0;
  for (size_t t = 0; t < suite_.num_tests; ++t) {
    std::optional<SimEnv> fresh;
    SimEnv& env = EnvForRun(seed_ ^ (0x9e3779b97f4a7c15ULL * (t + 1)), fresh);
    RunOutcome run = RunProgram(env, [&](SimEnv& e) { return suite_.run_test(e, t); });
    if (run.exit_code != 0 || run.crashed || run.hung) {
      ++failed;
    }
    coverage_.Merge(env.coverage());
    ++tests_run_;
    sim_steps_ += env.steps_used();
  }
  return failed;
}

}  // namespace afex
