#include "targets/harness.h"

#include <algorithm>

#include "injection/plan.h"
#include "sim/env.h"
#include "sim/process.h"

namespace afex {

TargetHarness::TargetHarness(TargetSuite suite, uint64_t seed)
    : suite_(std::move(suite)),
      seed_(seed),
      coverage_(suite_.total_blocks, suite_.recovery_base) {}

FaultSpace TargetHarness::MakeSpace(size_t max_call, bool include_zero_call) const {
  std::vector<Axis> axes;
  axes.push_back(Axis::MakeInterval("test", 1, static_cast<int64_t>(suite_.num_tests)));
  axes.push_back(Axis::MakeSet("function", suite_.functions));
  axes.push_back(
      Axis::MakeInterval("call", include_zero_call ? 0 : 1, static_cast<int64_t>(max_call)));
  return FaultSpace(std::move(axes), suite_.name);
}

TestOutcome TargetHarness::RunFault(const FaultSpace& space, const Fault& fault) {
  InjectionPlan plan = DecodeFault(space, fault);
  SimEnv env(seed_ ^ (0x9e3779b97f4a7c15ULL * (plan.test_id + 1)), suite_.step_budget);
  if (plan.spec.has_value()) {
    env.bus().Arm(*plan.spec);
  }
  RunOutcome run =
      RunProgram(env, [&](SimEnv& e) { return suite_.run_test(e, plan.test_id); });

  TestOutcome outcome;
  outcome.exit_code = run.exit_code;
  outcome.crashed = run.crashed;
  outcome.hung = run.hung;
  outcome.test_failed = run.exit_code != 0 || run.crashed || run.hung;
  outcome.fault_triggered = env.fault_triggered();
  outcome.injection_stack = env.TakeInjectionStack();
  // Single pass: merge the run's hits and collect the ones new to the
  // session (the coverage term of the impact metric, and what the campaign
  // journal re-seeds coverage from on resume).
  outcome.new_blocks_covered = coverage_.MergeCollect(env.coverage(), outcome.new_block_ids);
  std::sort(outcome.new_block_ids.begin(), outcome.new_block_ids.end());
  outcome.detail = run.termination_detail;
  ++tests_run_;
  return outcome;
}

ExplorationSession::Runner TargetHarness::MakeRunner(const FaultSpace& space) {
  return [this, &space](const Fault& fault) { return RunFault(space, fault); };
}

size_t TargetHarness::RunSuiteWithoutInjection() {
  size_t failed = 0;
  for (size_t t = 0; t < suite_.num_tests; ++t) {
    SimEnv env(seed_ ^ (0x9e3779b97f4a7c15ULL * (t + 1)), suite_.step_budget);
    RunOutcome run = RunProgram(env, [&](SimEnv& e) { return suite_.run_test(e, t); });
    if (run.exit_code != 0 || run.crashed || run.hung) {
      ++failed;
    }
    coverage_.Merge(env.coverage());
    ++tests_run_;
  }
  return failed;
}

}  // namespace afex
