// WebServer: the Apache httpd stand-in — config loading with module
// registration, a socket accept loop, static file serving, uploads, CGI,
// and access logging. OOM conditions are handled gracefully *almost*
// everywhere: module registration reproduces the paper's Fig. 7 bug
// (config.c:578), where the result of strdup is written through without a
// NULL check, so an out-of-memory error inside strdup (or its internal
// malloc) segfaults the server before any error can be logged.
#ifndef AFEX_TARGETS_WEBSERVER_WEBSERVER_H_
#define AFEX_TARGETS_WEBSERVER_WEBSERVER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace afex {

class SimEnv;

namespace webserver {

inline constexpr uint32_t kTotalBlocks = 640;
inline constexpr uint32_t kRecoveryBase = 560;

inline constexpr uint32_t kConfigBase = 0;
inline constexpr uint32_t kModuleBase = 20;
inline constexpr uint32_t kCoreBase = 40;
inline constexpr uint32_t kRequestBase = 60;
inline constexpr uint32_t kLogBase = 110;
inline constexpr uint32_t kCgiBase = 130;

inline constexpr uint32_t kConfigRecovery = kRecoveryBase + 0;
inline constexpr uint32_t kModuleRecovery = kRecoveryBase + 8;
inline constexpr uint32_t kCoreRecovery = kRecoveryBase + 12;
inline constexpr uint32_t kRequestRecovery = kRecoveryBase + 18;
inline constexpr uint32_t kLogRecovery = kRecoveryBase + 30;
inline constexpr uint32_t kCgiRecovery = kRecoveryBase + 34;

class WebServer {
 public:
  explicit WebServer(SimEnv& env) : env_(&env) {}

  // Parses the config file: Listen, DocumentRoot, LogFile, Module lines.
  // Registers each module (Fig. 7 bug lives there). Returns 0 on success.
  int LoadConfig(std::string_view path);

  // Creates, binds, and listens on the server socket.
  int Start();

  // Serves one simulated connection whose request bytes are `request`.
  // Returns 0 when a response (any status) was delivered, -1 on connection-
  // level failure. The response is retained for inspection.
  int ServeOne(std::string_view request);

  // Closes the listening socket.
  int Stop();

  const std::string& last_response() const { return last_response_; }
  size_t module_count() const { return module_names_.size(); }
  const std::string& document_root() const { return document_root_; }

 private:
  int RegisterModule(std::string_view name);
  int HandleGet(std::string_view path, std::string& response);
  int HandlePost(std::string_view path, std::string_view body, std::string& response);
  int HandleCgi(std::string_view path, std::string& response);
  void LogAccess(std::string line);

  SimEnv* env_;
  std::string document_root_ = "/www";
  std::string log_path_ = "/logs/access.log";
  std::vector<uint64_t> module_names_;  // handles from strdup
  int listen_fd_ = -1;
  std::string last_response_;
};

// Standard fixture: config file, document root with sample pages, log dir.
// `modules` controls how many Module lines the config contains (1..4);
// `comment_lines` prepends that many comment lines, shifting the call
// numbers of the parse loop per test the way real per-scenario configs do.
void InstallFixture(SimEnv& env, size_t modules, size_t comment_lines = 0);

}  // namespace webserver
}  // namespace afex

#endif  // AFEX_TARGETS_WEBSERVER_WEBSERVER_H_
