#include "targets/webserver/webserver.h"

#include "injection/libc_profile.h"
#include "sim/env.h"
#include "sim/simlibc.h"
#include "util/strings.h"

namespace afex {
namespace webserver {

namespace {
const char* kModuleCatalog[] = {"mod_core", "mod_mime", "mod_log", "mod_cgi"};
}

void InstallFixture(SimEnv& env, size_t modules, size_t comment_lines) {
  // Reused build buffer: fixture installation runs before every test, so
  // the config assembly should not allocate once warm.
  thread_local std::string config;
  config.clear();
  for (size_t i = 0; i < comment_lines; ++i) {
    config += "# scenario note " + std::to_string(i) + "\n";
  }
  config += "Listen 80\nDocumentRoot /www\nLogFile /logs/access.log\n";
  for (size_t i = 0; i < modules && i < 4; ++i) {
    config += std::string("Module ") + kModuleCatalog[i] + "\n";
  }
  env.AddFile("/etc/httpd.conf", config);
  env.AddDir("/www");
  env.AddFile("/www/index.html", "<html>welcome</html>");
  env.AddFile("/www/page.html", "<html>page</html>");
  env.AddFile("/www/data.txt", "plain data 12345");
  env.AddDir("/www/uploads");
  env.AddFile("/www/cgi-script", "echo:hello-from-cgi");
  env.AddDir("/logs");
  env.AddFile("/logs/access.log", "");
}

int WebServer::RegisterModule(std::string_view name) {
  StackFrame frame(*env_, "ap_add_module");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kModuleBase + 0);

  // ---- Fig. 7 bug (config.c:578-579) ----
  // ap_module_short_names[m->module_index] = strdup(sym_name);
  // ap_module_short_names[m->module_index][len] = '\0';
  // No NULL check: when strdup (or malloc inside it) fails, the store
  // through the NULL pointer segfaults before any recovery code runs.
  uint64_t short_name = libc.Strdup(name);
  module_names_.push_back(short_name);
  env_->Deref(short_name, "ap_module_short_names[m->module_index][len]");

  AFEX_COV(*env_, kModuleBase + 1);
  return 0;
}

int WebServer::LoadConfig(std::string_view path) {
  StackFrame frame(*env_, "ap_read_config");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kConfigBase + 0);

  // The config pool allocation *is* checked — most of Apache handles OOM
  // gracefully; only the module path above does not.
  uint64_t pool = libc.Calloc(4, 256);
  if (pool == 0) {
    AFEX_COV(*env_, kConfigRecovery + 0);
    return -1;
  }

  uint64_t stream = libc.Fopen(path, "r");
  if (stream == 0) {
    AFEX_COV(*env_, kConfigRecovery + 1);
    libc.Free(pool);
    return -1;
  }
  std::string line;
  int rc = 0;
  while (libc.Fgets(stream, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    size_t space = trimmed.find(' ');
    std::string_view key =
        space == std::string_view::npos ? trimmed : trimmed.substr(0, space);
    std::string_view value =
        space == std::string_view::npos ? std::string_view() : Trim(trimmed.substr(space));
    if (key == "DocumentRoot") {
      AFEX_COV(*env_, kConfigBase + 1);
      document_root_ = value;
    } else if (key == "LogFile") {
      AFEX_COV(*env_, kConfigBase + 2);
      log_path_ = value;
    } else if (key == "Listen") {
      AFEX_COV(*env_, kConfigBase + 3);
      bool ok = false;
      long port = libc.Strtol(value, ok);
      if (!ok || port <= 0 || port > 65535) {
        AFEX_COV(*env_, kConfigRecovery + 2);
        rc = -1;
        break;
      }
    } else if (key == "Module") {
      AFEX_COV(*env_, kConfigBase + 4);
      if (RegisterModule(value) != 0) {
        rc = -1;
        break;
      }
    } else {
      AFEX_COV(*env_, kConfigRecovery + 3);  // unknown directive: warn, keep going
    }
  }
  if (libc.Ferror(stream) != 0) {
    AFEX_COV(*env_, kConfigRecovery + 4);
    rc = -1;
  }
  libc.Fclose(stream);
  libc.Free(pool);
  if (rc == 0) {
    AFEX_COV(*env_, kConfigBase + 5);
  }
  return rc;
}

int WebServer::Start() {
  StackFrame frame(*env_, "ap_listen_open");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kCoreBase + 0);
  int fd = libc.Socket();
  if (fd < 0) {
    AFEX_COV(*env_, kCoreRecovery + 0);
    return -1;
  }
  if (libc.Bind(fd, "0.0.0.0:80") != 0) {
    AFEX_COV(*env_, kCoreRecovery + 1);
    libc.Close(fd);
    return -1;
  }
  if (libc.Listen(fd) != 0) {
    AFEX_COV(*env_, kCoreRecovery + 2);
    libc.Close(fd);
    return -1;
  }
  listen_fd_ = fd;
  AFEX_COV(*env_, kCoreBase + 1);
  return 0;
}

int WebServer::Stop() {
  StackFrame frame(*env_, "ap_listen_close");
  AFEX_COV(*env_, kCoreBase + 2);
  if (listen_fd_ >= 0) {
    env_->libc().Close(listen_fd_);
    listen_fd_ = -1;
  }
  return 0;
}

void WebServer::LogAccess(std::string line) {
  StackFrame frame(*env_, "ap_log_access");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kLogBase + 0);
  // Logging failures must never take a request down.
  uint64_t stream = libc.Fopen(log_path_, "a");
  if (stream == 0) {
    AFEX_COV(*env_, kLogRecovery + 0);
    return;
  }
  line += '\n';
  if (libc.Fwrite(stream, line) == 0) {
    AFEX_COV(*env_, kLogRecovery + 1);
  }
  if (libc.Fflush(stream) != 0) {
    AFEX_COV(*env_, kLogRecovery + 2);
  }
  libc.Fclose(stream);
  AFEX_COV(*env_, kLogBase + 1);
}

int WebServer::HandleGet(std::string_view path, std::string& response) {
  StackFrame frame(*env_, "ap_handle_get");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kRequestBase + 0);
  std::string full = document_root_;
  full += path;
  StatBuf st;
  if (libc.Stat(full, st) != 0 || st.is_dir) {
    AFEX_COV(*env_, kRequestRecovery + 0);
    response = "HTTP/1.1 404 Not Found\r\n\r\n";
    return 0;  // a 404 is a served response, not a server failure
  }
  int fd = libc.Open(full, kRdOnly);
  if (fd < 0) {
    AFEX_COV(*env_, kRequestRecovery + 1);
    response = "HTTP/1.1 403 Forbidden\r\n\r\n";
    return 0;
  }
  // Response body buffer, sized from the file — checked OOM path.
  uint64_t buffer = libc.Malloc(st.size + 64);
  if (buffer == 0) {
    AFEX_COV(*env_, kRequestRecovery + 2);
    libc.Close(fd);
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  std::string body;
  bool read_failed = false;
  while (true) {
    long n = libc.Read(fd, body, 64);  // appends in place; no chunk string
    if (n < 0) {
      if (env_->sim_errno() == sim_errno::kEINTR) {
        AFEX_COV(*env_, kRequestRecovery + 3);
        continue;
      }
      read_failed = true;
      break;
    }
    if (n == 0) {
      break;
    }
  }
  libc.Close(fd);
  libc.Free(buffer);
  if (read_failed) {
    AFEX_COV(*env_, kRequestRecovery + 4);
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  AFEX_COV(*env_, kRequestBase + 1);
  response = "HTTP/1.1 200 OK\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  return 0;
}

int WebServer::HandlePost(std::string_view path, std::string_view body,
                          std::string& response) {
  StackFrame frame(*env_, "ap_handle_post");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kRequestBase + 2);
  // Body staging buffer. The growth path was added late and never checks
  // the realloc result — an OOM here dereferences NULL (second seeded
  // crash mode, distinct stack from the Fig. 7 module-registration bug).
  uint64_t staging = libc.Malloc(64);
  if (staging == 0) {
    AFEX_COV(*env_, kRequestRecovery + 5);
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  if (body.size() > 32) {
    StackFrame grow(*env_, "ap_grow_body_buffer");
    uint64_t grown = libc.Realloc(staging, body.size() + 64);
    env_->Deref(grown, "request body staging buffer");
    staging = grown;
  }
  std::string full = document_root_;
  full += "/uploads";
  full += path;
  int fd = libc.Open(full, kWrOnly | kCreate | kTrunc);
  libc.Free(staging);
  if (fd < 0) {
    AFEX_COV(*env_, kRequestRecovery + 5);
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  if (libc.Write(fd, body) < 0) {
    AFEX_COV(*env_, kRequestRecovery + 6);
    libc.Close(fd);
    libc.Unlink(full);  // do not leave partial uploads behind
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  if (libc.Close(fd) != 0) {
    AFEX_COV(*env_, kRequestRecovery + 7);
    libc.Unlink(full);
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  AFEX_COV(*env_, kRequestBase + 3);
  response = "HTTP/1.1 201 Created\r\n\r\n";
  return 0;
}

int WebServer::HandleCgi(std::string_view path, std::string& response) {
  StackFrame frame(*env_, "ap_handle_cgi");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kCgiBase + 0);
  std::string full = document_root_;
  full += path;
  int fd = libc.Open(full, kRdOnly);
  if (fd < 0) {
    AFEX_COV(*env_, kCgiRecovery + 0);
    response = "HTTP/1.1 404 Not Found\r\n\r\n";
    return 0;
  }
  std::string script;
  if (libc.Read(fd, script, 256) < 0) {
    AFEX_COV(*env_, kCgiRecovery + 1);
    libc.Close(fd);
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  libc.Close(fd);
  // Environment block for the child interpreter. A failed calloc here is
  // dereferenced without a check (third seeded crash mode).
  {
    StackFrame envblock(*env_, "ap_cgi_build_env");
    uint64_t cgi_env = libc.Calloc(8, 32);
    env_->Deref(cgi_env, "CGI environment block");
    libc.Free(cgi_env);
  }
  // "Run" the script through a pipe to the simulated child interpreter.
  int pipe_r = -1;
  int pipe_w = -1;
  if (libc.Pipe(pipe_r, pipe_w) != 0) {
    AFEX_COV(*env_, kCgiRecovery + 2);
    response = "HTTP/1.1 500 Internal Server Error\r\n\r\n";
    return 0;
  }
  std::string_view output =
      StartsWith(script, "echo:") ? std::string_view(script).substr(5) : std::string_view();
  if (libc.Write(pipe_w, output) < 0) {
    AFEX_COV(*env_, kCgiRecovery + 3);
    libc.Close(pipe_r);
    libc.Close(pipe_w);
    response = "HTTP/1.1 502 Bad Gateway\r\n\r\n";
    return 0;
  }
  libc.Close(pipe_w);
  std::string body;
  if (libc.Read(pipe_r, body, 256) < 0) {
    AFEX_COV(*env_, kCgiRecovery + 4);
    libc.Close(pipe_r);
    response = "HTTP/1.1 502 Bad Gateway\r\n\r\n";
    return 0;
  }
  libc.Close(pipe_r);
  AFEX_COV(*env_, kCgiBase + 1);
  response = "HTTP/1.1 200 OK\r\n\r\n" + body;
  return 0;
}

int WebServer::ServeOne(std::string_view request) {
  StackFrame frame(*env_, "ap_process_connection");
  SimLibc& libc = env_->libc();
  AFEX_COV(*env_, kRequestBase + 4);
  last_response_.clear();
  if (listen_fd_ < 0) {
    AFEX_COV(*env_, kRequestRecovery + 8);
    return -1;
  }
  // The fixture's request bytes arrive through the listening socket.
  SimEnv::Socket* listener = env_->FindSocket(listen_fd_);
  if (listener == nullptr) {
    listener = &env_->AddSocket(listen_fd_);
  }
  listener->inbox = request;
  int conn = libc.Accept(listen_fd_);
  if (conn < 0) {
    AFEX_COV(*env_, kRequestRecovery + 9);
    return -1;
  }
  std::string raw;
  if (libc.Recv(conn, raw, 1024) < 0) {
    AFEX_COV(*env_, kRequestRecovery + 10);
    libc.Close(conn);
    return -1;
  }

  // Parse "<METHOD> <path> ...\r\n\r\n<body>".
  std::string response;
  size_t line_end = raw.find("\r\n");
  std::string_view first =
      line_end == std::string::npos ? std::string_view(raw) : std::string_view(raw).substr(0, line_end);
  std::vector<std::string_view> parts = SplitViews(first, ' ');
  if (parts.size() < 2) {
    AFEX_COV(*env_, kRequestRecovery + 11);
    response = "HTTP/1.1 400 Bad Request\r\n\r\n";
  } else if (parts[0] == "GET" && StartsWith(parts[1], "/cgi")) {
    HandleCgi(parts[1], response);
  } else if (parts[0] == "GET") {
    HandleGet(parts[1], response);
  } else if (parts[0] == "POST") {
    size_t body_at = raw.find("\r\n\r\n");
    std::string_view body =
        body_at == std::string::npos ? std::string_view() : std::string_view(raw).substr(body_at + 4);
    HandlePost(parts[1], body, response);
  } else {
    AFEX_COV(*env_, kRequestBase + 5);
    response = "HTTP/1.1 405 Method Not Allowed\r\n\r\n";
  }

  int rc = 0;
  if (libc.Send(conn, response) < 0) {
    AFEX_COV(*env_, kRequestRecovery + 12);
    rc = -1;  // client never got the response
  }
  libc.Close(conn);
  if (parts.size() >= 2) {
    std::string entry(parts[0]);
    entry += ' ';
    entry += parts[1];
    LogAccess(std::move(entry));
  } else {
    LogAccess("malformed");
  }
  last_response_ = response;
  if (rc == 0) {
    AFEX_COV(*env_, kRequestBase + 6);
  }
  return rc;
}

}  // namespace webserver
}  // namespace afex
