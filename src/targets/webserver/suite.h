// The WebServer target suite: 58 tests mirroring Phi_Apache (paper §7:
// 58 tests x 19 functions x 10 call numbers = 11,020 faults).
#ifndef AFEX_TARGETS_WEBSERVER_SUITE_H_
#define AFEX_TARGETS_WEBSERVER_SUITE_H_

#include <cstddef>

#include "targets/target.h"

namespace afex {
namespace webserver {

inline constexpr size_t kNumTests = 58;

TargetSuite MakeSuite();

}  // namespace webserver
}  // namespace afex

#endif  // AFEX_TARGETS_WEBSERVER_SUITE_H_
