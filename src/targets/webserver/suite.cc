#include "targets/webserver/suite.h"

#include <cassert>

#include "sim/env.h"
#include "targets/webserver/webserver.h"
#include "util/strings.h"

namespace afex {
namespace webserver {
namespace {

// Boots a configured, listening server; returns false on startup failure.
// `scenario` varies the config's comment padding so parse-loop call numbers
// differ across tests.
bool BootServer(SimEnv& env, WebServer& server, size_t modules, size_t scenario) {
  InstallFixture(env, modules, scenario % 5);
  if (server.LoadConfig("/etc/httpd.conf") != 0) {
    return false;
  }
  return server.Start() == 0;
}

bool ResponseHas(const WebServer& server, const std::string& token) {
  return server.last_response().find(token) != std::string::npos;
}

// ---- config family: tests 0-9 ----
int TestConfig(SimEnv& env, size_t variant) {
  WebServer server(env);
  size_t modules = 1 + variant % 4;  // 1..4 Module lines
  InstallFixture(env, modules, variant % 5);
  if (server.LoadConfig("/etc/httpd.conf") != 0) {
    return 1;
  }
  if (server.module_count() != modules || server.document_root() != "/www") {
    return 1;
  }
  if (variant % 3 == 0) {
    // Re-parse tolerance: unknown directives must not fail the parse.
    env.FindMutable("/etc/httpd.conf")->content += "UnknownDirective on\n";
    WebServer second(env);
    if (second.LoadConfig("/etc/httpd.conf") != 0) {
      return 1;
    }
  }
  return 0;
}

// ---- static GET family: tests 10-24 ----
int TestGet(SimEnv& env, size_t variant) {
  WebServer server(env);
  if (!BootServer(env, server, 1 + variant % 3, variant)) {
    return 1;
  }
  const char* paths[] = {"/index.html", "/page.html", "/data.txt"};
  size_t requests = 1 + variant % 3;
  for (size_t i = 0; i < requests; ++i) {
    if (server.ServeOne(std::string("GET ") + paths[(variant + i) % 3] + " HTTP/1.1\r\n\r\n") !=
        0) {
      return 1;
    }
    if (!ResponseHas(server, "200 OK")) {
      return 1;
    }
  }
  server.Stop();
  return 0;
}

// ---- POST family: tests 25-34 ----
int TestPost(SimEnv& env, size_t variant) {
  WebServer server(env);
  if (!BootServer(env, server, 1 + variant % 2, variant)) {
    return 1;
  }
  // Bodies grow with the variant so the larger uploads exercise the
  // body-buffer growth path (and its seeded unchecked realloc).
  std::string body = std::string(variant * 8, 'x') + "payload-" + std::to_string(variant);
  if (server.ServeOne("POST /file" + std::to_string(variant) + " HTTP/1.1\r\n\r\n" + body) != 0) {
    return 1;
  }
  if (!ResponseHas(server, "201 Created")) {
    return 1;
  }
  const SimEnv::FileNode* upload = env.Find("/www/uploads/file" + std::to_string(variant));
  if (upload == nullptr || upload->content != body) {
    return 1;  // an acknowledged upload must be durable and complete
  }
  server.Stop();
  return 0;
}

// ---- error-handling family: tests 35-42 ----
int TestErrors(SimEnv& env, size_t variant) {
  WebServer server(env);
  if (!BootServer(env, server, 1, variant)) {
    return 1;
  }
  switch (variant % 4) {
    case 0:
      if (server.ServeOne("GET /missing.html HTTP/1.1\r\n\r\n") != 0 ||
          !ResponseHas(server, "404")) {
        return 1;
      }
      break;
    case 1:
      if (server.ServeOne("garbage-no-verb\r\n\r\n") != 0 || !ResponseHas(server, "400")) {
        return 1;
      }
      break;
    case 2:
      if (server.ServeOne("DELETE /index.html HTTP/1.1\r\n\r\n") != 0 ||
          !ResponseHas(server, "405")) {
        return 1;
      }
      break;
    default:
      // Directory requests are not served.
      if (server.ServeOne("GET /uploads HTTP/1.1\r\n\r\n") != 0 || !ResponseHas(server, "404")) {
        return 1;
      }
      break;
  }
  server.Stop();
  return 0;
}

// ---- logging family: tests 43-49 ----
int TestLogging(SimEnv& env, size_t variant) {
  WebServer server(env);
  if (!BootServer(env, server, 1, variant)) {
    return 1;
  }
  size_t requests = 1 + variant % 3;
  for (size_t i = 0; i < requests; ++i) {
    if (server.ServeOne("GET /index.html HTTP/1.1\r\n\r\n") != 0) {
      return 1;
    }
  }
  server.Stop();
  const SimEnv::FileNode* log = env.Find("/logs/access.log");
  if (log == nullptr) {
    return 1;
  }
  // Every request must be logged exactly once.
  size_t lines = 0;
  for (char c : log->content) {
    if (c == '\n') {
      ++lines;
    }
  }
  return lines == requests ? 0 : 1;
}

// ---- CGI family: tests 50-57 ----
int TestCgi(SimEnv& env, size_t variant) {
  WebServer server(env);
  if (!BootServer(env, server, 2 + variant % 3, variant)) {
    return 1;
  }
  if (server.ServeOne("GET /cgi-script HTTP/1.1\r\n\r\n") != 0) {
    return 1;
  }
  if (!ResponseHas(server, "hello-from-cgi")) {
    return 1;
  }
  server.Stop();
  return 0;
}

}  // namespace

TargetSuite MakeSuite() {
  TargetSuite suite;
  suite.name = "webserver";
  suite.num_tests = kNumTests;
  suite.total_blocks = kTotalBlocks;
  suite.recovery_base = kRecoveryBase;
  suite.functions = {"malloc", "calloc", "realloc", "strdup", "fopen",
                     "fclose", "fgets",  "fflush",  "open",   "close",
                     "read",   "write",  "stat",    "unlink", "socket",
                     "bind",   "listen", "accept",  "recv"};
  assert(suite.functions.size() == 19);
  suite.run_test = [](SimEnv& env, size_t test_id) {
    assert(test_id < kNumTests);
    if (test_id < 10) {
      return TestConfig(env, test_id);
    }
    if (test_id < 25) {
      return TestGet(env, test_id - 10);
    }
    if (test_id < 35) {
      return TestPost(env, test_id - 25);
    }
    if (test_id < 43) {
      return TestErrors(env, test_id - 35);
    }
    if (test_id < 50) {
      return TestLogging(env, test_id - 43);
    }
    return TestCgi(env, test_id - 50);
  };
  suite.step_budget = 100'000;
  return suite;
}

}  // namespace webserver
}  // namespace afex
