// afex_cli: command-line driver for exploration campaigns — the shape a
// user-facing release of the prototype (paper §6) takes. Points a search
// strategy at one of the built-in simulated targets, optionally with a
// fault-space description file, redundancy feedback, and an environment
// model, and prints the ranked report.
//
// Usage:
//   afex_cli --target=<coreutils|minidb|webserver|docstore-v0.8|docstore-v2.0>
//            [--strategy=<fitness|random|exhaustive>] [--budget=N]
//            [--seed=N] [--max-call=N] [--space=FILE] [--feedback]
//            [--crashes-only] [--top=N]
//
// Examples:
//   afex_cli --target=webserver --budget=1000 --feedback
//   afex_cli --target=minidb --strategy=random --budget=500
//   afex_cli --target=coreutils --space=my_space.afex --top=5
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/exhaustive_explorer.h"
#include "core/fitness_explorer.h"
#include "core/random_explorer.h"
#include "core/report.h"
#include "core/session.h"
#include "core/space_lang.h"
#include "targets/coreutils/suite.h"
#include "targets/docstore/suite.h"
#include "targets/harness.h"
#include "targets/minidb/suite.h"
#include "targets/webserver/suite.h"
#include "util/log.h"

using namespace afex;

namespace {

struct Options {
  std::string target = "coreutils";
  std::string strategy = "fitness";
  std::string space_file;
  size_t budget = 500;
  uint64_t seed = 1;
  size_t max_call = 0;  // 0 = per-target default
  bool feedback = false;
  bool crashes_only = false;
  size_t top = 10;
  bool verbose = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: afex_cli --target=<coreutils|minidb|webserver|docstore-v0.8|"
               "docstore-v2.0>\n"
               "                [--strategy=<fitness|random|exhaustive>] [--budget=N]\n"
               "                [--seed=N] [--max-call=N] [--space=FILE] [--feedback]\n"
               "                [--crashes-only] [--top=N] [--verbose]\n");
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string& out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

bool ParseOptions(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "target", value)) {
      options.target = value;
    } else if (ParseFlag(arg, "strategy", value)) {
      options.strategy = value;
    } else if (ParseFlag(arg, "space", value)) {
      options.space_file = value;
    } else if (ParseFlag(arg, "budget", value)) {
      // SearchTarget treats max_tests == 0 as "no constraint"; from the CLI
      // that would loop forever, so insist on an explicit positive budget
      // (this also catches empty and negative values).
      long long budget = std::atoll(value.c_str());
      if (budget <= 0) {
        std::fprintf(stderr, "--budget must be >= 1\n");
        return false;
      }
      options.budget = static_cast<size_t>(budget);
    } else if (ParseFlag(arg, "seed", value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "max-call", value)) {
      options.max_call = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "top", value)) {
      options.top = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (arg == "--feedback") {
      options.feedback = true;
    } else if (arg == "--crashes-only") {
      options.crashes_only = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool MakeTarget(const std::string& name, TargetSuite& suite, size_t& default_max_call,
                bool& zero_call) {
  if (name == "coreutils") {
    suite = coreutils::MakeSuite();
    default_max_call = 2;
    zero_call = true;
    return true;
  }
  if (name == "minidb") {
    suite = minidb::MakeSuite();
    default_max_call = 100;
    zero_call = false;
    return true;
  }
  if (name == "webserver") {
    suite = webserver::MakeSuite();
    default_max_call = 10;
    zero_call = false;
    return true;
  }
  if (name == "docstore-v0.8") {
    suite = docstore::MakeSuiteV08();
    default_max_call = 10;
    zero_call = false;
    return true;
  }
  if (name == "docstore-v2.0") {
    suite = docstore::MakeSuiteV20();
    default_max_call = 10;
    zero_call = false;
    return true;
  }
  std::fprintf(stderr, "unknown target '%s'\n", name.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, options)) {
    PrintUsage();
    return 2;
  }
  SetLogLevel(options.verbose ? LogLevel::kInfo : LogLevel::kWarn);

  TargetSuite suite;
  size_t default_max_call = 2;
  bool zero_call = false;
  if (!MakeTarget(options.target, suite, default_max_call, zero_call)) {
    return 2;
  }
  TargetHarness harness(suite, options.seed ^ 0x5eed);

  // Fault space: from the description file if given, else the canonical
  // <test, function, call> space of the target.
  FaultSpace space;
  if (!options.space_file.empty()) {
    std::ifstream in(options.space_file);
    if (!in) {
      std::fprintf(stderr, "cannot open space file '%s'\n", options.space_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      UniverseSpec spec = ParseFaultSpaceDescription(text.str());
      if (spec.spaces.size() != 1) {
        std::fprintf(stderr,
                     "space file describes %zu subspaces; afex_cli explores one at a time\n",
                     spec.spaces.size());
        return 2;
      }
      space = BuildFaultSpace(spec.spaces[0], options.target);
    } catch (const SpaceLangError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  } else {
    space = harness.MakeSpace(options.max_call > 0 ? options.max_call : default_max_call,
                              zero_call);
  }
  std::printf("target %s, space '%s' with %zu points, strategy %s, budget %zu, seed %llu\n",
              options.target.c_str(), space.name().c_str(), space.TotalPoints(),
              options.strategy.c_str(), options.budget,
              static_cast<unsigned long long>(options.seed));

  std::unique_ptr<Explorer> explorer;
  if (options.strategy == "fitness") {
    FitnessExplorerConfig config;
    config.seed = options.seed;
    explorer = std::make_unique<FitnessExplorer>(space, config);
  } else if (options.strategy == "random") {
    explorer = std::make_unique<RandomExplorer>(space, options.seed);
  } else if (options.strategy == "exhaustive") {
    explorer = std::make_unique<ExhaustiveExplorer>(space);
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", options.strategy.c_str());
    return 2;
  }

  SessionConfig session_config;
  session_config.redundancy_feedback = options.feedback;
  ExplorationSession session(*explorer, harness.MakeRunner(space), session_config);
  SessionResult result = session.Run({.max_tests = options.budget});

  std::printf("\nexecuted %zu tests: %zu failed, %zu crashed, %zu hung; "
              "%zu behaviour clusters (%zu failure, %zu crash)\n",
              result.tests_executed, result.failed_tests, result.crashes, result.hangs,
              result.clusters, result.unique_failures, result.unique_crashes);
  std::printf("coverage %.1f%% (recovery %.1f%%)\n", 100 * harness.CoverageFraction(),
              100 * harness.RecoveryCoverageFraction());

  ReportBuilder builder(space, options.strategy);
  Report report = builder.Build(result, session.clusterer(),
                                /*min_impact=*/options.crashes_only ? 20.0 : 10.0);
  std::printf("\ntop findings (one representative per behaviour cluster):\n");
  size_t shown = 0;
  for (const Finding& f : report.representatives) {
    if (options.crashes_only && !f.crashed) {
      continue;
    }
    std::printf("\n%s", builder.GenerateReproScript(f).c_str());
    if (++shown >= options.top) {
      break;
    }
  }
  if (shown == 0) {
    std::printf("  (none above the impact threshold)\n");
  }
  return 0;
}
