// afex_cli: command-line driver for exploration campaigns — the shape a
// user-facing release of the prototype (paper §6) takes. Points a search
// strategy at one of the built-in simulated targets, optionally with a
// fault-space description file, redundancy feedback, and an environment
// model, and prints the ranked report.
//
// Campaigns can be made durable: --journal writes every executed test to an
// append-only record log before the next test starts, --resume replays that
// log to continue an interrupted campaign exactly where it stopped, and
// --warm-start seeds a fresh fitness search with a prior campaign's results
// (paper §7 knowledge reuse). --jobs runs the campaign through the
// cluster-mode parallel session; --export dumps the full record set as CSV
// or JSON for offline analysis.
//
// Usage:
//   afex_cli --target=<coreutils|minidb|webserver|docstore-v0.8|docstore-v2.0>
//            [--strategy=<fitness|random|exhaustive>] [--budget=N] [--jobs=N]
//            [--seed=N] [--max-call=N] [--space=FILE] [--feedback]
//            [--journal=FILE] [--resume] [--warm-start=FILE]
//            [--export=csv|json] [--export-file=FILE]
//            [--crashes-only] [--top=N] [--log-level=debug|info|warn|error|off]
//            [--metrics-file=FILE] [--trace-file=FILE] [--status-interval=SEC]
//
// Examples:
//   afex_cli --target=webserver --budget=1000 --feedback
//   afex_cli --target=minidb --strategy=random --budget=500 --jobs=8
//   afex_cli --target=coreutils --space=my_space.afex --top=5
//   afex_cli --target=minidb --budget=5000 --journal=run.afexj
//   afex_cli --target=minidb --budget=5000 --journal=run.afexj --resume
//   afex_cli --target=minidb --budget=500 --warm-start=run.afexj
//   afex_cli --target=minidb --budget=500 --export=csv --export-file=run.csv
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "analysis/target_profile.h"
#include "campaign/export.h"
#include "campaign/store.h"
#include "cluster/node_manager.h"
#include "exec/feedback_block.h"
#include "exec/real_target_harness.h"
#include "cluster/parallel_session.h"
#include "core/exhaustive_explorer.h"
#include "core/fitness_explorer.h"
#include "core/random_explorer.h"
#include "core/report.h"
#include "core/session.h"
#include "core/space_lang.h"
#include "obs/telemetry.h"
#include "sim/coverage.h"
#include "targets/coreutils/suite.h"
#include "targets/docstore/suite.h"
#include "targets/harness.h"
#include "targets/minidb/suite.h"
#include "targets/webserver/suite.h"
#include "util/log.h"
#include "util/strings.h"

using namespace afex;

namespace {

struct Options {
  std::string target = "coreutils";
  std::string strategy = "fitness";
  std::string space_file;
  size_t budget = 500;
  size_t jobs = 1;
  uint64_t seed = 1;
  size_t max_call = 0;  // 0 = per-target default
  bool feedback = false;
  bool crashes_only = false;
  size_t top = 10;
  bool verbose = false;          // legacy alias for --log-level=info
  std::string log_level;         // "" = default (warn, or info with --verbose)
  std::string metrics_file;      // final MetricsSnapshot JSON ("" = off)
  std::string trace_file;        // Chrome-trace JSON ("" = off)
  double status_interval = 0.0;  // seconds between progress lines (0 = off)
  std::string journal;
  bool resume = false;
  std::string warm_start;
  std::string export_format;
  std::string export_file = "-";  // "-" = stdout
  // Real-process backend (src/exec). "sim" explores the built-in simulated
  // targets; "real" forks the --target-cmd binary per test under the
  // LD_PRELOAD interposer.
  std::string backend = "sim";
  std::string target_cmd;   // command line, space-separated; {test} = test id
  // Two-phase crash→recover→verify (README "Crash-recovery scenarios"):
  // after every workload run, re-exec the target in recovery mode, then run
  // the verifier, both in the workload's sandbox without the interposer.
  std::string recovery_cmd;
  std::string verify_cmd;
  std::string interposer;   // libafex_interpose.so ("" = auto-discover)
  uint64_t timeout_ms = 5000;
  size_t num_tests = 6;     // test-axis cardinality for the real backend
  // How the real backend turns tests into processes: fork+exec per test
  // (spawn), an AFL-style forkserver, or in-process persistent iterations
  // with automatic forkserver fallback. README "Execution modes".
  std::string exec_mode = "spawn";
  // Derive the fault space from static analysis of the target binary: the
  // function axis is pruned to the interposable libc functions the binary
  // actually imports, and fitness priorities are seeded from callsite
  // weights (paper §7 fault-space definition methodology).
  bool auto_space = false;
  // Which coverage signal feeds fitness on the real backend: the libc call
  // proxy (every interposed libc call = one block), real sancov edge
  // coverage from an instrumented build, or auto (edges when the static
  // analyzer finds sancov instrumentation, proxy otherwise).
  std::string coverage = "auto";
  // Explicit-use tracking, so flags belonging to the other backend are
  // rejected instead of silently ignored.
  bool target_set = false;
  bool timeout_ms_set = false;
  bool num_tests_set = false;
  bool exec_mode_set = false;
  bool coverage_set = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: afex_cli --target=<coreutils|minidb|webserver|docstore-v0.8|"
               "docstore-v2.0>\n"
               "                [--strategy=<fitness|random|exhaustive>] [--budget=N]\n"
               "                [--jobs=N] [--seed=N] [--max-call=N] [--space=FILE]\n"
               "                [--feedback] [--journal=FILE] [--resume]\n"
               "                [--warm-start=FILE] [--export=csv|json]\n"
               "                [--export-file=FILE] [--crashes-only] [--top=N] [--verbose]\n"
               "                [--backend=<sim|real>] [--target-cmd='BIN ARGS...']\n"
               "                [--recovery-cmd='BIN ARGS...'] [--verify-cmd='BIN ARGS...']\n"
               "                [--interposer=SO] [--timeout-ms=N] [--num-tests=N]\n"
               "                [--exec-mode=<spawn|forkserver|persistent>]\n"
               "                [--coverage=<auto|proxy|edges>]\n"
               "                [--auto-space] [--log-level=debug|info|warn|error|off]\n"
               "                [--metrics-file=FILE] [--trace-file=FILE]\n"
               "                [--status-interval=SEC]\n"
               "\n"
               "observability: --metrics-file dumps the campaign's final telemetry\n"
               "snapshot (counters, gauges, phase latency histograms) as JSON,\n"
               "--trace-file writes a Chrome-trace (Perfetto-loadable) timeline of\n"
               "every pipeline phase, and --status-interval logs a progress line\n"
               "(tests/sec EWMA, ETA, crashes, clusters, coverage) every SEC\n"
               "seconds. --verbose is an alias for --log-level=info.\n"
               "\n"
               "real-process backend: --backend=real --target-cmd='path/to/bin {test}'\n"
               "runs the command per test under the libafex_interpose.so fault\n"
               "injector ({test} = 1-based test id; appended when omitted).\n"
               "--auto-space statically analyzes the target ELF binary and prunes\n"
               "the function axis to the interposable libc functions it imports,\n"
               "seeding fitness priorities from per-function callsite counts.\n"
               "--exec-mode picks how tests become processes: spawn (fork+exec per\n"
               "test, the default), forkserver (one target stopped pre-main, one\n"
               "bare fork per test), or persistent (in-process iterations via the\n"
               "afex_persistent_run hook, falling back to forkserver when the\n"
               "target never adopts it). All modes produce identical records.\n"
               "--coverage picks the fitness coverage signal: proxy (one block per\n"
               "interposed libc call), edges (real SanitizerCoverage edges streamed\n"
               "from a -fsanitize-coverage build, e.g. the afex_*_cov variants), or\n"
               "auto (edges when static analysis detects instrumentation; default).\n"
               "\n"
               "crash-recovery campaigns: --recovery-cmd re-runs the target in\n"
               "recovery mode after every workload run, and --verify-cmd then checks\n"
               "invariants — both in the workload's sandbox, without the interposer\n"
               "({test} substitutes as in --target-cmd). A non-zero recovery exit\n"
               "marks the record recfail=1; a non-zero verifier exit marks inv=1.\n");
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string& out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

// Validated numeric flag parsing: rejects empty, non-numeric, negative, and
// out-of-range values instead of silently reading them as 0 (the bare-atoll
// failure mode). `min_value` expresses per-flag floors, e.g. --budget >= 1.
bool ParseSizeFlag(const std::string& name, const std::string& value, uint64_t min_value,
                   uint64_t& out) {
  if (!ParseUint(value, out) || out < min_value) {
    std::fprintf(stderr, "--%s expects an integer >= %llu, got '%s'\n", name.c_str(),
                 static_cast<unsigned long long>(min_value), value.c_str());
    return false;
  }
  return true;
}

bool ParseOptions(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    uint64_t number = 0;
    if (ParseFlag(arg, "target", value)) {
      options.target = value;
      options.target_set = true;
    } else if (ParseFlag(arg, "strategy", value)) {
      options.strategy = value;
    } else if (ParseFlag(arg, "space", value)) {
      options.space_file = value;
    } else if (ParseFlag(arg, "budget", value)) {
      // SearchTarget treats max_tests == 0 as "no constraint"; from the CLI
      // that would loop forever, so insist on an explicit positive budget.
      if (!ParseSizeFlag("budget", value, 1, number)) {
        return false;
      }
      options.budget = static_cast<size_t>(number);
    } else if (ParseFlag(arg, "jobs", value)) {
      if (!ParseSizeFlag("jobs", value, 1, number)) {
        return false;
      }
      options.jobs = static_cast<size_t>(number);
    } else if (ParseFlag(arg, "seed", value)) {
      if (!ParseSizeFlag("seed", value, 0, number)) {
        return false;
      }
      options.seed = number;
    } else if (ParseFlag(arg, "max-call", value)) {
      if (!ParseSizeFlag("max-call", value, 0, number)) {
        return false;
      }
      options.max_call = static_cast<size_t>(number);
    } else if (ParseFlag(arg, "top", value)) {
      if (!ParseSizeFlag("top", value, 0, number)) {
        return false;
      }
      options.top = static_cast<size_t>(number);
    } else if (ParseFlag(arg, "backend", value)) {
      options.backend = value;
    } else if (ParseFlag(arg, "target-cmd", value)) {
      options.target_cmd = value;
    } else if (ParseFlag(arg, "recovery-cmd", value)) {
      options.recovery_cmd = value;
    } else if (ParseFlag(arg, "verify-cmd", value)) {
      options.verify_cmd = value;
    } else if (ParseFlag(arg, "interposer", value)) {
      options.interposer = value;
    } else if (ParseFlag(arg, "timeout-ms", value)) {
      if (!ParseSizeFlag("timeout-ms", value, 1, number)) {
        return false;
      }
      options.timeout_ms = number;
      options.timeout_ms_set = true;
    } else if (ParseFlag(arg, "num-tests", value)) {
      if (!ParseSizeFlag("num-tests", value, 1, number)) {
        return false;
      }
      options.num_tests = static_cast<size_t>(number);
      options.num_tests_set = true;
    } else if (ParseFlag(arg, "exec-mode", value)) {
      options.exec_mode = value;
      options.exec_mode_set = true;
    } else if (ParseFlag(arg, "coverage", value)) {
      options.coverage = value;
      options.coverage_set = true;
    } else if (ParseFlag(arg, "log-level", value)) {
      options.log_level = value;
    } else if (ParseFlag(arg, "metrics-file", value)) {
      options.metrics_file = value;
    } else if (ParseFlag(arg, "trace-file", value)) {
      options.trace_file = value;
    } else if (ParseFlag(arg, "status-interval", value)) {
      char* end = nullptr;
      double seconds = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || !(seconds > 0.0)) {
        std::fprintf(stderr, "--status-interval expects seconds > 0, got '%s'\n",
                     value.c_str());
        return false;
      }
      options.status_interval = seconds;
    } else if (ParseFlag(arg, "journal", value)) {
      options.journal = value;
    } else if (ParseFlag(arg, "warm-start", value)) {
      options.warm_start = value;
    } else if (ParseFlag(arg, "export", value)) {
      options.export_format = value;
    } else if (ParseFlag(arg, "export-file", value)) {
      options.export_file = value;
    } else if (arg == "--auto-space") {
      options.auto_space = true;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--feedback") {
      options.feedback = true;
    } else if (arg == "--crashes-only") {
      options.crashes_only = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (options.backend != "sim" && options.backend != "real") {
    std::fprintf(stderr, "--backend expects 'sim' or 'real', got '%s'\n",
                 options.backend.c_str());
    return false;
  }
  if (options.backend == "real" && options.target_cmd.empty()) {
    std::fprintf(stderr, "--backend=real requires --target-cmd='BIN ARGS...'\n");
    return false;
  }
  if (options.backend != "real" &&
      (!options.target_cmd.empty() || !options.interposer.empty() ||
       !options.recovery_cmd.empty() || !options.verify_cmd.empty() ||
       options.timeout_ms_set || options.num_tests_set || options.exec_mode_set ||
       options.coverage_set)) {
    std::fprintf(stderr,
                 "--target-cmd/--recovery-cmd/--verify-cmd/--interposer/--timeout-ms/"
                 "--num-tests/--exec-mode/--coverage only apply to --backend=real\n");
    return false;
  }
  if (options.exec_mode != "spawn" && options.exec_mode != "forkserver" &&
      options.exec_mode != "persistent") {
    std::fprintf(stderr,
                 "--exec-mode expects 'spawn', 'forkserver', or 'persistent', got '%s'\n",
                 options.exec_mode.c_str());
    return false;
  }
  if (options.coverage != "auto" && options.coverage != "proxy" &&
      options.coverage != "edges") {
    std::fprintf(stderr, "--coverage expects 'auto', 'proxy', or 'edges', got '%s'\n",
                 options.coverage.c_str());
    return false;
  }
  if (options.auto_space && options.backend != "real") {
    std::fprintf(stderr, "--auto-space only applies to --backend=real\n");
    return false;
  }
  if (options.auto_space && !options.space_file.empty()) {
    std::fprintf(stderr,
                 "--auto-space derives the fault space from the binary; it conflicts "
                 "with --space\n");
    return false;
  }
  if (options.backend == "real" && options.target_set) {
    std::fprintf(stderr,
                 "--target names a built-in simulated target; with --backend=real the "
                 "system under test is --target-cmd\n");
    return false;
  }
  if (options.resume && options.journal.empty()) {
    std::fprintf(stderr, "--resume requires --journal=FILE\n");
    return false;
  }
  if (!options.warm_start.empty() && options.strategy != "fitness") {
    std::fprintf(stderr, "--warm-start only applies to --strategy=fitness\n");
    return false;
  }
  if (!options.export_format.empty() && options.export_format != "csv" &&
      options.export_format != "json") {
    std::fprintf(stderr, "--export expects 'csv' or 'json', got '%s'\n",
                 options.export_format.c_str());
    return false;
  }
  if (options.export_file != "-" && options.export_format.empty()) {
    std::fprintf(stderr, "--export-file requires --export=csv|json\n");
    return false;
  }
  if (!options.log_level.empty()) {
    LogLevel parsed;
    if (!ParseLogLevel(options.log_level, parsed)) {
      std::fprintf(stderr, "--log-level expects debug|info|warn|error|off, got '%s'\n",
                   options.log_level.c_str());
      return false;
    }
    if (options.verbose && options.log_level != "info") {
      std::fprintf(stderr, "--verbose is an alias for --log-level=info; it conflicts "
                           "with --log-level=%s\n",
                   options.log_level.c_str());
      return false;
    }
  }
  return true;
}

bool MakeTarget(const std::string& name, TargetSuite& suite, size_t& default_max_call,
                bool& zero_call) {
  if (name == "coreutils") {
    suite = coreutils::MakeSuite();
    default_max_call = 2;
    zero_call = true;
    return true;
  }
  if (name == "minidb") {
    suite = minidb::MakeSuite();
    default_max_call = 100;
    zero_call = false;
    return true;
  }
  if (name == "webserver") {
    suite = webserver::MakeSuite();
    default_max_call = 10;
    zero_call = false;
    return true;
  }
  if (name == "docstore-v0.8") {
    suite = docstore::MakeSuiteV08();
    default_max_call = 10;
    zero_call = false;
    return true;
  }
  if (name == "docstore-v2.0") {
    suite = docstore::MakeSuiteV20();
    default_max_call = 10;
    zero_call = false;
    return true;
  }
  std::fprintf(stderr, "unknown target '%s'\n", name.c_str());
  return false;
}

// Splits --target-cmd on spaces (no quoting: target commands are simple
// "binary arg..." lines; anything richer belongs in a wrapper script).
std::vector<std::string> SplitCommand(const std::string& cmd) {
  std::vector<std::string> argv;
  std::istringstream in(cmd);
  std::string word;
  while (in >> word) {
    argv.push_back(word);
  }
  return argv;
}

// Resolves the interposer .so: the explicit flag, else $AFEX_INTERPOSE,
// else the build-tree location relative to this executable.
std::string ResolveInterposer(const Options& options, const char* argv0) {
  namespace fs = std::filesystem;
  if (!options.interposer.empty()) {
    return options.interposer;
  }
  if (const char* env = std::getenv("AFEX_INTERPOSE"); env != nullptr && *env != '\0') {
    return env;
  }
  std::error_code ec;
  fs::path exe = fs::weakly_canonical(fs::path(argv0), ec);
  if (!ec) {
    fs::path candidate =
        exe.parent_path().parent_path() / "src" / "exec" / "libafex_interpose.so";
    if (fs::exists(candidate, ec)) {
      return candidate.string();
    }
  }
  return "";
}

// Resolves the target command's binary to an existing executable file:
// paths (anything with a '/') must exist as given; bare names get the same
// $PATH search execvp would do. Rejecting a missing binary here — before
// the campaign starts — beats the old behaviour of every single test
// failing with "exec: failed to start".
bool ResolveTargetBinary(const std::string& name, std::string& resolved) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (name.find('/') != std::string::npos) {
    if (!fs::is_regular_file(name, ec)) {
      return false;
    }
    resolved = fs::absolute(name, ec).string();
    return true;
  }
  const char* path = std::getenv("PATH");
  std::istringstream dirs(path != nullptr ? path : "");
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    if (dir.empty()) {
      continue;
    }
    fs::path candidate = fs::path(dir) / name;
    if (fs::is_regular_file(candidate, ec) && ::access(candidate.c_str(), X_OK) == 0) {
      resolved = candidate.string();
      return true;
    }
  }
  return false;
}

bool MakeRealConfig(const Options& options, const char* argv0,
                    exec::RealTargetConfig& config, std::string& target_binary) {
  config.target_argv = SplitCommand(options.target_cmd);
  if (config.target_argv.empty()) {
    std::fprintf(stderr, "--target-cmd is empty after splitting\n");
    return false;
  }
  if (!ResolveTargetBinary(config.target_argv[0], target_binary)) {
    std::fprintf(stderr, "--target-cmd binary '%s' does not exist%s\n",
                 config.target_argv[0].c_str(),
                 config.target_argv[0].find('/') == std::string::npos ? " in $PATH" : "");
    return false;
  }
  // The two-phase commands get the same split + binary resolution as the
  // target command: a typo'd verifier path should fail before the campaign,
  // not silently mark every record invariant_violated.
  struct PhaseCmd {
    const char* flag;
    const std::string* cmd;
    std::vector<std::string>* argv;
  } phase_cmds[] = {
      {"recovery-cmd", &options.recovery_cmd, &config.recovery_argv},
      {"verify-cmd", &options.verify_cmd, &config.verify_argv},
  };
  for (const PhaseCmd& phase : phase_cmds) {
    if (phase.cmd->empty()) {
      continue;
    }
    *phase.argv = SplitCommand(*phase.cmd);
    if (phase.argv->empty()) {
      std::fprintf(stderr, "--%s is empty after splitting\n", phase.flag);
      return false;
    }
    std::string resolved;
    if (!ResolveTargetBinary((*phase.argv)[0], resolved)) {
      std::fprintf(stderr, "--%s binary '%s' does not exist%s\n", phase.flag,
                   (*phase.argv)[0].c_str(),
                   (*phase.argv)[0].find('/') == std::string::npos ? " in $PATH" : "");
      return false;
    }
    (*phase.argv)[0] = resolved;
  }
  config.num_tests = options.num_tests;
  config.timeout_ms = options.timeout_ms;
  config.exec_mode = options.exec_mode == "forkserver"
                         ? exec::ExecMode::kForkserver
                         : options.exec_mode == "persistent"
                               ? exec::ExecMode::kPersistent
                               : exec::ExecMode::kSpawn;
  config.interposer_path = ResolveInterposer(options, argv0);
  if (config.interposer_path.empty()) {
    std::fprintf(stderr,
                 "cannot locate libafex_interpose.so; pass --interposer=PATH "
                 "(without it no fault is ever injected)\n");
    return false;
  }
  if (!std::filesystem::is_regular_file(config.interposer_path)) {
    std::fprintf(stderr, "--interposer '%s' does not exist\n",
                 config.interposer_path.c_str());
    return false;
  }
  return true;
}

std::unique_ptr<Explorer> MakeExplorer(const Options& options, const FaultSpace& space) {
  if (options.strategy == "fitness") {
    FitnessExplorerConfig config;
    config.seed = options.seed;
    return std::make_unique<FitnessExplorer>(space, config);
  }
  if (options.strategy == "random") {
    return std::make_unique<RandomExplorer>(space, options.seed);
  }
  if (options.strategy == "exhaustive") {
    return std::make_unique<ExhaustiveExplorer>(space);
  }
  std::fprintf(stderr, "unknown strategy '%s'\n", options.strategy.c_str());
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, options)) {
    PrintUsage();
    return 2;
  }
  LogLevel log_level = LogLevel::kWarn;
  if (!options.log_level.empty()) {
    ParseLogLevel(options.log_level, log_level);  // validated in ParseOptions
  } else if (options.verbose || options.status_interval > 0.0) {
    // --status-interval without an explicit level would emit into the void;
    // raise the default so the progress lines are visible.
    log_level = LogLevel::kInfo;
  }
  SetLogLevel(log_level);

  // Execution backend: the simulated harness for the built-in targets, or
  // the real-process harness forking --target-cmd under the interposer.
  // Everything downstream sees only the TargetBackend interface.
  TargetSuite suite;
  size_t default_max_call = 2;
  bool zero_call = false;
  const uint64_t harness_seed = options.seed ^ 0x5eed;
  const bool real_backend = options.backend == "real";
  std::unique_ptr<TargetHarness> sim_harness;
  std::unique_ptr<exec::RealTargetHarness> real_harness;
  exec::RealTargetConfig real_config;
  TargetBackend* backend = nullptr;
  std::optional<analysis::TargetProfile> profile;
  if (real_backend) {
    std::string target_binary;
    if (!MakeRealConfig(options, argv[0], real_config, target_binary)) {
      return 2;
    }
    // Static target analysis (paper §7): profile the binary's libc boundary
    // up front. --auto-space depends on it; for hand-written spaces it backs
    // the unimported-function fail-fast and the CampaignMeta fingerprint
    // that lets resume detect a rebuilt target. A non-ELF64 target command
    // (a script, say) is only fatal when --auto-space asked for analysis.
    std::string analysis_error;
    profile = analysis::AnalyzeTargetBinary(target_binary, analysis_error);
    if (!profile.has_value() && options.auto_space) {
      std::fprintf(stderr, "--auto-space: cannot analyze '%s': %s\n",
                   target_binary.c_str(), analysis_error.c_str());
      return 2;
    }
    if (!profile.has_value()) {
      std::fprintf(stderr,
                   "warning: static analysis of '%s' unavailable (%s); space/import "
                   "checks skipped\n",
                   target_binary.c_str(), analysis_error.c_str());
    }
    if (options.auto_space) {
      std::vector<std::string> imported = profile->InterposableImports();
      if (imported.empty()) {
        std::fprintf(stderr,
                     "--auto-space: '%s' imports none of the %zu interposable libc "
                     "functions; there is no fault space to explore\n",
                     target_binary.c_str(), exec::InterposableFunctions().size());
        return 2;
      }
      real_config.functions = std::move(imported);
    }
    // Coverage signal resolution (README "Coverage feedback"): edge coverage
    // needs a sancov-instrumented build, which the static analyzer detects
    // from the hand-off symbol in the binary's dynsym. `edges` against a
    // provably uninstrumented target fails here rather than running a whole
    // campaign whose every record counts real.edges_missing.
    const bool sancov = profile.has_value() && profile->sancov_instrumented;
    if (options.coverage == "edges") {
      if (profile.has_value() && !sancov) {
        std::fprintf(stderr,
                     "--coverage=edges: '%s' is not sancov-instrumented (build the "
                     "target with -fsanitize-coverage, e.g. the afex_*_cov variants), "
                     "or use --coverage=proxy\n",
                     target_binary.c_str());
        return 2;
      }
      real_config.use_edges = true;  // analysis unavailable: trust the caller
    } else if (options.coverage == "auto") {
      real_config.use_edges = sancov;
    }
    AFEX_LOG(kInfo) << "coverage signal: "
                    << (real_config.use_edges ? "sancov edges" : "libc proxy");
    real_harness = std::make_unique<exec::RealTargetHarness>(real_config);
    backend = real_harness.get();
    default_max_call = 8;
  } else {
    if (!MakeTarget(options.target, suite, default_max_call, zero_call)) {
      return 2;
    }
    sim_harness = std::make_unique<TargetHarness>(suite, harness_seed);
    backend = sim_harness.get();
  }

  // Fault space: from the description file if given, else the canonical
  // <test, function, call> space of the target.
  FaultSpace space;
  if (!options.space_file.empty()) {
    std::ifstream in(options.space_file);
    if (!in) {
      std::fprintf(stderr, "cannot open space file '%s'\n", options.space_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      UniverseSpec spec = ParseFaultSpaceDescription(text.str());
      if (spec.spaces.size() != 1) {
        std::fprintf(stderr,
                     "space file describes %zu subspaces; afex_cli explores one at a time\n",
                     spec.spaces.size());
        return 2;
      }
      space = BuildFaultSpace(spec.spaces[0], real_backend ? "real" : options.target);
    } catch (const SpaceLangError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  } else {
    size_t max_call = options.max_call > 0 ? options.max_call : default_max_call;
    space = real_backend ? real_harness->MakeSpace(max_call, zero_call)
                         : sim_harness->MakeSpace(max_call, zero_call);
  }
  // Fail fast on a custom space whose function axis names functions the
  // interposer cannot wrap: every such point would report as a test
  // failure, and the fitness loop would steer the whole campaign toward
  // permanently-uninjectable faults.
  if (real_backend) {
    for (size_t i = 0; i < space.dimensions(); ++i) {
      const Axis& axis = space.axis(i);
      if (axis.name() != "function") {
        continue;
      }
      for (const std::string& label : axis.labels()) {
        if (exec::InterposedSlot(label.c_str()) < 0) {
          std::fprintf(stderr,
                       "space function axis names '%s', which the real-process "
                       "interposer does not wrap (see src/exec/feedback_block.h)\n",
                       label.c_str());
          return 2;
        }
      }
    }
    // Second fail-fast, against the binary rather than the interposer: a
    // user-written space naming functions the target never imports would
    // spend its whole budget on faults the target cannot experience (the
    // call never happens, so the injection never fires). Only user spaces
    // are checked — the default full axis deliberately explores blind.
    if (profile.has_value() && !options.space_file.empty()) {
      std::vector<std::string> unimported =
          analysis::UnimportedSpaceFunctions(*profile, space);
      if (!unimported.empty()) {
        std::string joined;
        for (const std::string& name : unimported) {
          joined += (joined.empty() ? "" : ", ") + name;
        }
        std::fprintf(stderr,
                     "space function axis names %zu function(s) the target binary "
                     "never imports: %s\n(re-run with --auto-space, or check "
                     "afex_analyze output for the importable set)\n",
                     unimported.size(), joined.c_str());
        return 2;
      }
    }
  }
  if (options.auto_space) {
    // Print both sizes so the pruning is visible (and assertable): the
    // derived space vs. the full interposable space the same flags would
    // have explored without analysis.
    size_t full_functions = exec::InterposableFunctions().size();
    size_t pruned_functions = real_config.functions.size();
    size_t full_points = (space.TotalPoints() / pruned_functions) * full_functions;
    std::printf("auto-space: pruned function axis to %zu of %zu interposable "
                "functions; %zu of %zu points\n",
                pruned_functions, full_functions, space.TotalPoints(), full_points);
  }
  const std::string target_label =
      real_backend ? "real:" + options.target_cmd : options.target;
  std::printf("target %s, space '%s' with %zu points, strategy %s, budget %zu, seed %llu"
              ", jobs %zu\n",
              target_label.c_str(), space.name().c_str(), space.TotalPoints(),
              options.strategy.c_str(), options.budget,
              static_cast<unsigned long long>(options.seed), options.jobs);

  std::unique_ptr<Explorer> explorer = MakeExplorer(options, space);
  if (explorer == nullptr) {
    return 2;
  }
  if (options.auto_space && options.strategy == "fitness" && profile.has_value()) {
    // Callsite-weight priors: bias the first parent selections toward the
    // functions the target calls from the most places. Hints are not
    // results — they age out as real fitness arrives.
    size_t seeded = analysis::SeedExplorerFromProfile(
        static_cast<FitnessExplorer&>(*explorer), space, *profile);
    if (seeded > 0) {
      std::printf("auto-space: seeded %zu priority hints from callsite weights\n", seeded);
    }
  }

  CampaignMeta meta;
  meta.target = target_label;
  meta.strategy = options.strategy;
  meta.seed = options.seed;
  meta.space_fingerprint = FaultSpaceFingerprint(space);
  meta.jobs = options.jobs;
  meta.feedback = options.feedback;
  if (profile.has_value()) {
    meta.analysis_fingerprint = analysis::TargetProfileFingerprint(*profile);
  }

  const SessionResult* result = nullptr;  // owned by whichever session ran
  const RedundancyClusterer* clusterer = nullptr;
  const SearchTarget search_target{.max_tests = options.budget};
  size_t replayed_tests = 0;   // journal records consumed by --resume
  double campaign_seconds = 0.0;

  // Declared at function scope: the report section below reads the
  // session's clusterer, and the sessions hold references to the store
  // (observer) and the node harnesses (runner hooks).
  std::optional<CampaignStore> store;
  std::optional<ExplorationSession> serial_session;
  std::optional<ParallelSession> parallel_session;
  std::vector<std::unique_ptr<TargetBackend>> node_backends;

  // Campaign telemetry (src/obs): constructed only when one of the three
  // observability flags asked for it — otherwise every instrumentation site
  // keeps its null sink and the campaign runs exactly as before.
  std::optional<obs::CampaignTelemetry> telemetry;
  if (!options.metrics_file.empty() || !options.trace_file.empty() ||
      options.status_interval > 0.0) {
    obs::TelemetryConfig telemetry_config;
    telemetry_config.trace = !options.trace_file.empty();
    telemetry_config.progress.interval_seconds = options.status_interval;
    telemetry_config.progress.budget = options.budget;
    // Under --jobs the progress line samples node 0's local coverage view
    // (the cross-node union is only aggregated at campaign end).
    telemetry_config.progress.coverage_fraction = [backend, &node_backends]() -> double {
      return node_backends.empty() ? backend->CoverageFraction()
                                   : node_backends[0]->CoverageFraction();
    };
    if (options.strategy == "fitness") {
      auto* fitness = static_cast<FitnessExplorer*>(explorer.get());
      telemetry_config.progress.pool_size = [fitness] {
        return fitness->priority_queue_size();
      };
    }
    telemetry.emplace(std::move(telemetry_config));
  }
  obs::MetricsSink* metrics_sink = telemetry.has_value() ? &*telemetry : nullptr;
  backend->set_metrics_sink(metrics_sink);

  try {
    // Warm start (paper §7 knowledge reuse): seed the fitness search with a
    // prior campaign's measured fitness before the first candidate. The
    // seeded knowledge is part of the campaign identity — a warm-started
    // journal only resumes with the same --warm-start file, since the seeds
    // determine the candidate sequence being replayed.
    if (!options.warm_start.empty()) {
      CampaignStore prior = CampaignStore::Open(options.warm_start);
      meta.warm_fingerprint = WarmStartFingerprint(space, prior.records());
      size_t seeded =
          WarmStartFromRecords(static_cast<FitnessExplorer&>(*explorer), prior.records());
      std::printf("warm-start: seeded %zu of %zu prior results from %s\n", seeded,
                  prior.records().size(), options.warm_start.c_str());
    }

    if (!options.journal.empty()) {
      store = options.resume ? CampaignStore::Open(options.journal, meta)
                             : CampaignStore::Create(options.journal, meta);
    }
    if (options.resume && store->records().size() > options.budget) {
      // A smaller budget would truncate completed results out of the
      // journal (and, serially, over-run the requested budget on replay).
      std::fprintf(stderr,
                   "--budget=%zu is smaller than the %zu tests already journaled in '%s'; "
                   "resume with --budget >= %zu\n",
                   options.budget, store->records().size(), options.journal.c_str(),
                   store->records().size());
      return 2;
    }

    SessionConfig session_config;
    session_config.redundancy_feedback = options.feedback;
    session_config.metrics = metrics_sink;
    if (store.has_value()) {
      session_config.record_observer = store->MakeObserver();
      store->SetMetricsSink(metrics_sink);
    }

    auto print_replay_mismatch = [&options] {
      std::fprintf(stderr,
                   "journal '%s' does not replay against this configuration "
                   "(was it written by a different build?)\n",
                   options.journal.c_str());
    };

    if (options.jobs == 1) {
      // Serial campaign.
      auto& session = serial_session;
      session.emplace(*explorer, *backend, space, session_config);
      if (options.resume) {
        for (const SessionRecord& record : store->records()) {
          if (!session->Replay(record)) {
            print_replay_mismatch();
            return 2;
          }
        }
        store->CommitResume(store->records().size());
        backend->SeedCoverage(store->CoverageIdsForNode(0));
        replayed_tests = store->records().size();
        std::printf("resumed %zu journaled tests from %s\n", store->records().size(),
                    options.journal.c_str());
      }
      auto started = std::chrono::steady_clock::now();
      result = &session->Run(search_target);
      campaign_seconds = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - started).count();
      clusterer = &session->clusterer();
    } else {
      // Cluster campaign: one backend (with its own coverage accumulator,
      // and for real targets its own scratch root) per job, as on a real
      // cluster where every machine observes coverage locally.
      std::vector<std::unique_ptr<NodeManager>> managers;
      for (size_t i = 0; i < options.jobs; ++i) {
        if (real_backend) {
          node_backends.push_back(std::make_unique<exec::RealTargetHarness>(real_config));
        } else {
          node_backends.push_back(std::make_unique<TargetHarness>(suite, harness_seed));
        }
        TargetBackend* b = node_backends[i].get();
        b->set_metrics_sink(metrics_sink);
        managers.push_back(std::make_unique<NodeManager>(
            "node" + std::to_string(i),
            NodeManager::Hooks{.test = [b, &space](const Fault& f) {
              return b->RunFault(space, f);
            }}));
      }
      auto& session = parallel_session;
      session.emplace(*explorer, std::move(managers), session_config);
      if (options.resume) {
        std::optional<size_t> consumed = session->Replay(store->records(), search_target);
        if (!consumed.has_value()) {
          print_replay_mismatch();
          return 2;
        }
        size_t dropped = store->records().size() - *consumed;
        store->CommitResume(*consumed);
        for (size_t i = 0; i < options.jobs; ++i) {
          node_backends[i]->SeedCoverage(store->CoverageIdsForNode(i));
        }
        replayed_tests = *consumed;
        std::printf("resumed %zu journaled tests from %s", *consumed, options.journal.c_str());
        if (dropped > 0) {
          std::printf(" (%zu from an incomplete round will re-execute)", dropped);
        }
        std::printf("\n");
      }
      auto started = std::chrono::steady_clock::now();
      result = &session->Run(search_target);
      campaign_seconds = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - started).count();
      clusterer = &session->clusterer();
    }

    std::printf("\nexecuted %zu tests: %zu failed, %zu crashed, %zu hung; "
                "%zu behaviour clusters (%zu failure, %zu crash)\n",
                result->tests_executed, result->failed_tests, result->crashes, result->hangs,
                result->clusters, result->unique_failures, result->unique_crashes);
    // Campaign throughput, so tests/sec is visible without the bench
    // binaries. Replayed (resumed) records are bookkeeping, not executions,
    // and are excluded from the rate.
    size_t live_tests = result->tests_executed - replayed_tests;
    size_t sim_steps = backend->total_sim_steps();
    for (const auto& node : node_backends) {
      sim_steps += node->total_sim_steps();
    }
    std::printf("campaign wall time %.3f s", campaign_seconds);
    if (campaign_seconds > 0.0 && live_tests > 0) {
      std::printf(", %.0f tests/sec (%zu executed this run)",
                  static_cast<double>(live_tests) / campaign_seconds, live_tests);
      if (sim_steps > 0) {
        // Watchdog steps are the simulated instruction counter, so this is
        // the sim layer's own throughput alongside the campaign's.
        std::printf(", %.2fM sim steps/sec",
                    static_cast<double>(sim_steps) / campaign_seconds / 1e6);
      }
    }
    std::printf("\n");
    if (options.jobs == 1) {
      std::printf("coverage %.1f%% (recovery %.1f%%)\n", 100 * backend->CoverageFraction(),
                  100 * backend->RecoveryCoverageFraction());
    } else {
      // Aggregate coverage across nodes: every covered block was new to its
      // node exactly once, so the union of per-record new-block ids is the
      // union of all blocks covered anywhere on the cluster.
      CoverageAccumulator aggregate(node_backends[0]->coverage_total_blocks(),
                                    node_backends[0]->coverage_recovery_base());
      for (const SessionRecord& r : result->records) {
        aggregate.MergeIds(r.outcome.new_block_ids);
      }
      std::printf("coverage %.1f%% (recovery %.1f%%) across %zu nodes\n",
                  100 * aggregate.Fraction(), 100 * aggregate.RecoveryFraction(), options.jobs);
    }
  } catch (const CampaignError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // Telemetry outputs: snapshot file, trace file, and the phase-share note
  // folded into the report synopsis (and the JSON export below).
  std::optional<obs::MetricsSnapshot> metrics_snapshot;
  if (telemetry.has_value()) {
    metrics_snapshot = telemetry->Snapshot();
    if (!options.metrics_file.empty()) {
      if (!telemetry->WriteMetricsFile(options.metrics_file)) {
        std::fprintf(stderr, "cannot write metrics file '%s'\n",
                     options.metrics_file.c_str());
        return 2;
      }
      std::printf("wrote metrics snapshot to %s\n", options.metrics_file.c_str());
    }
    if (!options.trace_file.empty()) {
      if (!telemetry->WriteTraceFile(options.trace_file)) {
        std::fprintf(stderr, "cannot write trace file '%s'\n", options.trace_file.c_str());
        return 2;
      }
      std::printf("wrote %llu trace events to %s (load in Perfetto or "
                  "chrome://tracing)\n",
                  static_cast<unsigned long long>(telemetry->trace().total_events()),
                  options.trace_file.c_str());
    }
  }

  ReportBuilder builder(space, options.strategy);
  if (telemetry.has_value()) {
    builder.set_telemetry_note(telemetry->SynopsisLine());
  }
  Report report = builder.Build(*result, *clusterer,
                                /*min_impact=*/options.crashes_only ? 20.0 : 10.0);
  std::printf("\n%s", builder.Render(report).c_str());
  std::printf("\ntop findings (one representative per behaviour cluster):\n");
  size_t shown = 0;
  for (const Finding& f : report.representatives) {
    if (options.crashes_only && !f.crashed) {
      continue;
    }
    std::printf("\n%s", builder.GenerateReproScript(f).c_str());
    if (++shown >= options.top) {
      break;
    }
  }
  if (shown == 0) {
    std::printf("  (none above the impact threshold)\n");
  }

  if (!options.export_format.empty()) {
    std::ofstream file;
    bool to_stdout = options.export_file == "-";
    if (!to_stdout) {
      file.open(options.export_file);
      if (!file) {
        std::fprintf(stderr, "cannot open export file '%s'\n", options.export_file.c_str());
        return 2;
      }
    }
    std::ostream& out = to_stdout ? std::cout : file;
    if (options.export_format == "csv") {
      ExportCsv(space, *result, out);
    } else {
      ExportJson(meta, space, *result, out,
                 metrics_snapshot.has_value() ? &*metrics_snapshot : nullptr);
    }
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error writing export to '%s'\n", options.export_file.c_str());
      return 2;
    }
    if (!to_stdout) {
      std::printf("\nexported %s to %s\n", options.export_format.c_str(),
                  options.export_file.c_str());
    }
  }
  return 0;
}
