// afex_walutil: a small real-process target for the exec backend — a
// file-copy / WAL-append / WAL-replay utility whose on-disk formats and
// recovery idioms mirror the simulated minidb target (table files are
// "MINIDB1" headers plus key=value rows, WAL records are op|key|value), but
// which speaks *real* libc: open/read/write/close, fopen/fgets/fwrite,
// malloc, socket. It is what afex_cli --backend=real drives end to end.
//
// Usage: afex_walutil <test-id>   (1-based; kNumScenarios scenarios)
//
// Every scenario writes its own fixture into the current working directory
// (the harness runs each test in a fresh scratch sandbox), performs its
// operation with explicit error checks, and exits 0 on success / 1 on a
// *detected* failure, printing "walutil: <what> failed: errno=<n>" so the
// parent can observe the injected errno. Like its minidb model it also
// carries deliberately imperfect recovery:
//
//  * catalog scenario (MySQL #25097 pattern): a failed catalog read is
//    detected and logged, but the parser then dereferences the buffer the
//    failed read never produced — SIGSEGV.
//  * replay scenario: a table store that fails after WAL records were
//    already applied aborts (post-commit divergence), like a storage
//    engine hitting an I/O error past the commit point — SIGABRT.
//
// Deliberately plain C-style code with fixed buffers: call ordinals seen by
// the interposer stay stable properties of the scenario, not of allocator
// or iostream internals. Built with sanitizers off so LD_PRELOAD works in
// every CI preset.
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace {

constexpr int kNumScenarios = 6;

void Fail(const char* what) {
  fprintf(stderr, "walutil: %s failed: errno=%d\n", what, errno);
  exit(1);
}

// Writes `data` to `path` with open/write/close, checking every call.
void WriteFileOrDie(const char* path, const char* data) {
  int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    Fail("fixture open");
  }
  size_t len = strlen(data);
  if (write(fd, data, len) != static_cast<ssize_t>(len)) {
    Fail("fixture write");
  }
  if (close(fd) != 0) {
    Fail("fixture close");
  }
}

constexpr char kTableImage[] =
    "MINIDB1\n"
    "# rows\n"
    "1=alpha\n"
    "2=beta\n"
    "3=gamma\n";

// ---- scenario 1: fd-level file copy ---------------------------------------
int RunCopy() {
  WriteFileOrDie("source.tbl", kTableImage);
  int in = open("source.tbl", O_RDONLY);
  if (in < 0) {
    Fail("copy open source");
  }
  int out = open("copy.tbl", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out < 0) {
    Fail("copy open dest");
  }
  char buf[64];
  ssize_t n;
  while ((n = read(in, buf, sizeof(buf))) > 0) {
    if (write(out, buf, static_cast<size_t>(n)) != n) {
      Fail("copy write");
    }
  }
  if (n < 0) {
    Fail("copy read");
  }
  if (close(in) != 0 || close(out) != 0) {
    Fail("copy close");
  }
  printf("copied source.tbl\n");
  return 0;
}

// ---- scenario 2: WAL append -----------------------------------------------
int RunAppend() {
  WriteFileOrDie("wal.log", "ins|1|alpha\n");
  int fd = open("wal.log", O_WRONLY | O_APPEND);
  if (fd < 0) {
    Fail("wal open");
  }
  const char* records[] = {"ins|2|beta\n", "ins|3|gamma\n", "del|1|\n"};
  for (const char* record : records) {
    size_t len = strlen(record);
    if (write(fd, record, len) != static_cast<ssize_t>(len)) {
      // Durability first: a failed log append must refuse the operation,
      // not corrupt the log.
      close(fd);
      Fail("wal append");
    }
  }
  if (close(fd) != 0) {
    Fail("wal close");
  }
  printf("appended 3 records\n");
  return 0;
}

// ---- scenario 3: WAL replay into the table (minidb Recover shape) ---------
// Loads table rows, applies ins|key|value and del|key| records, stores the
// table via temp file + rename. A store failure after records were applied
// is a post-commit divergence: abort.
struct Row {
  long key;
  char value[56];
};

int LoadTable(const char* path, Row* rows, int cap) {
  FILE* stream = fopen(path, "r");
  if (stream == nullptr) {
    Fail("table fopen");
  }
  char line[128];
  int count = 0;
  int header_seen = 0;
  while (fgets(line, sizeof(line), stream) != nullptr) {
    if (!header_seen) {
      header_seen = 1;
      if (strncmp(line, "MINIDB1", 7) != 0) {
        fclose(stream);
        Fail("table header check");
      }
      continue;
    }
    if (line[0] == '#') {
      continue;
    }
    char* eq = strchr(line, '=');
    if (eq == nullptr || count >= cap) {
      continue;
    }
    *eq = '\0';
    rows[count].key = strtol(line, nullptr, 10);
    snprintf(rows[count].value, sizeof(rows[count].value), "%s", eq + 1);
    char* nl = strchr(rows[count].value, '\n');
    if (nl != nullptr) {
      *nl = '\0';
    }
    ++count;
  }
  if (ferror(stream)) {
    fclose(stream);
    Fail("table read");
  }
  fclose(stream);
  return count;
}

// Returns 0 on success, -1 on a detected (recoverable) failure.
int StoreTable(const char* path, const Row* rows, int count) {
  FILE* stream = fopen("table.tmp", "w");
  if (stream == nullptr) {
    return -1;
  }
  char line[128];
  int len = snprintf(line, sizeof(line), "MINIDB1\n");
  if (fwrite(line, 1, static_cast<size_t>(len), stream) != static_cast<size_t>(len)) {
    fclose(stream);
    unlink("table.tmp");
    return -1;
  }
  for (int i = 0; i < count; ++i) {
    len = snprintf(line, sizeof(line), "%ld=%s\n", rows[i].key, rows[i].value);
    if (fwrite(line, 1, static_cast<size_t>(len), stream) != static_cast<size_t>(len)) {
      fclose(stream);
      unlink("table.tmp");
      return -1;
    }
  }
  if (fclose(stream) != 0) {
    unlink("table.tmp");
    return -1;
  }
  if (rename("table.tmp", path) != 0) {
    unlink("table.tmp");
    return -1;
  }
  return 0;
}

int RunReplay() {
  WriteFileOrDie("table.tbl", kTableImage);
  WriteFileOrDie("wal.log",
                 "ins|4|delta\n"
                 "del|2|\n"
                 "ins|1|alpha2\n"
                 "ins|5");  // torn tail, expected after a crash
  FILE* wal = fopen("wal.log", "r");
  if (wal == nullptr) {
    Fail("wal fopen");
  }
  char line[128];
  int applied = 0;
  while (fgets(line, sizeof(line), wal) != nullptr) {
    char* p1 = strchr(line, '|');
    if (p1 == nullptr) {
      continue;  // torn record
    }
    *p1 = '\0';
    char* p2 = strchr(p1 + 1, '|');
    if (p2 == nullptr) {
      continue;  // torn record
    }
    *p2 = '\0';
    long key = strtol(p1 + 1, nullptr, 10);
    char* value = p2 + 1;
    char* nl = strchr(value, '\n');
    if (nl != nullptr) {
      *nl = '\0';
    }

    Row rows[32];
    int count = LoadTable("table.tbl", rows, 32);
    if (strcmp(line, "ins") == 0) {
      int found = -1;
      for (int i = 0; i < count; ++i) {
        if (rows[i].key == key) {
          found = i;
        }
      }
      if (found >= 0) {
        snprintf(rows[found].value, sizeof(rows[found].value), "%s", value);
      } else if (count < 32) {
        rows[count].key = key;
        snprintf(rows[count].value, sizeof(rows[count].value), "%s", value);
        ++count;
      }
    } else if (strcmp(line, "del") == 0) {
      for (int i = 0; i < count; ++i) {
        if (rows[i].key == key) {
          rows[i] = rows[count - 1];
          --count;
          break;
        }
      }
    }
    if (StoreTable("table.tbl", rows, count) != 0) {
      // The record is in the durable log but the table image no longer
      // matches it: serving from here would return stale data forever.
      fprintf(stderr, "walutil: table/log divergence after applied record\n");
      fclose(wal);
      abort();
    }
    ++applied;
  }
  if (ferror(wal)) {
    fclose(wal);
    Fail("wal read");
  }
  fclose(wal);
  printf("replayed %d records\n", applied);
  return 0;
}

// ---- scenario 4: catalog load (MySQL #25097 pattern) ----------------------
int RunCatalog() {
  WriteFileOrDie("errmsg.sys",
                 "001 syntax error\n"
                 "002 table not found\n"
                 "003 duplicate key\n");
  char* catalog = nullptr;
  int fd = open("errmsg.sys", O_RDONLY);
  if (fd < 0) {
    // Correct recovery: detected and logged...
    fprintf(stderr, "walutil: cannot open errmsg.sys (errno=%d)\n", errno);
  } else {
    catalog = static_cast<char*>(malloc(4096));
    if (catalog != nullptr) {
      ssize_t n = read(fd, catalog, 4095);
      if (n < 0) {
        fprintf(stderr, "walutil: cannot read errmsg.sys (errno=%d)\n", errno);
        free(catalog);
        catalog = nullptr;  // ...so is this one...
      } else {
        catalog[n] = '\0';
      }
    } else {
      fprintf(stderr, "walutil: out of memory loading errmsg.sys (errno=%d)\n", errno);
    }
    close(fd);
  }
  // ...but the parser runs regardless of whether the buffer exists:
  // NULL dereference when any of the recovery paths above fired.
  int messages = 0;
  for (const char* p = catalog; *p != '\0'; ++p) {
    if (*p == '\n') {
      ++messages;
    }
  }
  free(catalog);
  printf("catalog has %d messages\n", messages);
  return 0;
}

// ---- scenario 5: unix-socket smoke ----------------------------------------
int RunNet() {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    Fail("socket");
  }
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  snprintf(addr.sun_path, sizeof(addr.sun_path), "walutil.sock");
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    Fail("bind");
  }
  if (listen(fd, 1) != 0) {
    close(fd);
    Fail("listen");
  }
  if (close(fd) != 0) {
    Fail("socket close");
  }
  if (unlink("walutil.sock") != 0) {
    Fail("socket unlink");
  }
  printf("socket smoke ok\n");
  return 0;
}

// ---- scenario 6: stdio file copy ------------------------------------------
int RunStdioCopy() {
  WriteFileOrDie("source.tbl", kTableImage);
  FILE* in = fopen("source.tbl", "r");
  if (in == nullptr) {
    Fail("stdio open source");
  }
  FILE* out = fopen("copy.tbl", "w");
  if (out == nullptr) {
    fclose(in);
    Fail("stdio open dest");
  }
  char line[128];
  int lines = 0;
  while (fgets(line, sizeof(line), in) != nullptr) {
    size_t len = strlen(line);
    if (fwrite(line, 1, len, out) != len) {
      Fail("stdio write");
    }
    ++lines;
  }
  if (ferror(in)) {
    Fail("stdio read");
  }
  if (fflush(out) != 0) {
    Fail("stdio flush");
  }
  if (fclose(in) != 0 || fclose(out) != 0) {
    Fail("stdio close");
  }
  printf("copied %d lines\n", lines);
  return 0;
}

int RunScenario(int id) {
  switch (id) {
    case 1:
      return RunCopy();
    case 2:
      return RunAppend();
    case 3:
      return RunReplay();
    case 4:
      return RunCatalog();
    case 5:
      return RunNet();
    case 6:
      return RunStdioCopy();
    default:
      fprintf(stderr, "unknown test id %d\n", id);
      return 2;
  }
}

}  // namespace

// Persistent-mode hook, exported by libafex_interpose.so when the process
// was launched as a persistent server (AFEX_FORKSERVER=2). Weak: when the
// binary runs standalone or under spawn/forkserver the symbol is absent and
// the pointer is null, so adoption costs one branch.
extern "C" int afex_persistent_run(int (*entry)(int test_id)) __attribute__((weak));

int main(int argc, char** argv) {
  // Unbuffered stdio keeps the scenarios persistent-safe: buffered streams
  // flush through libc-internal writes that bypass the PLT (so ordinals are
  // unaffected either way), but an exit()-interrupted iteration would carry
  // buffered output into the next test's capture window.
  setvbuf(stdout, nullptr, _IONBF, 0);
  setvbuf(stderr, nullptr, _IONBF, 0);
  if (afex_persistent_run != nullptr) {
    int rc = afex_persistent_run(&RunScenario);
    if (rc >= 0) {
      return rc;
    }
    // rc < 0: the preload is present but this process is not a persistent
    // server (spawn or forkserver mode) — run the normal argv path.
  }
  if (argc != 2) {
    fprintf(stderr, "usage: afex_walutil <test-id 1..%d>\n", kNumScenarios);
    return 2;
  }
  return RunScenario(static_cast<int>(strtol(argv[1], nullptr, 10)));
}
