// afex_analyze: standalone static target analysis (paper §7, fault-space
// definition methodology) — reports which interposable libc functions an
// ELF64 binary imports, how many call sites reference each, and the pruned
// fault space a real-backend campaign would explore with --auto-space.
//
// Usage:
//   afex_analyze BINARY [--format=<human|json|space>]
//                [--num-tests=N] [--max-call=N] [--all-imports]
//
//   --format=human  per-function table + summary (default)
//   --format=json   machine-readable report
//   --format=space  the derived space as space-DSL text; feed the output
//                   file straight back to afex_cli --space=FILE
//   --all-imports   human/json list every dynamic import, not only the
//                   interposable ones
//
// Exit status: 0 on success, 1 when analysis fails (not an ELF64 binary,
// unreadable file), 2 on usage errors.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/target_profile.h"
#include "core/space_lang.h"
#include "exec/real_target_harness.h"
#include "util/strings.h"

using namespace afex;

namespace {

struct Options {
  std::string binary;
  std::string format = "human";
  size_t num_tests = 6;
  size_t max_call = 8;
  bool all_imports = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: afex_analyze BINARY [--format=<human|json|space>]\n"
               "                    [--num-tests=N] [--max-call=N] [--all-imports]\n");
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string& out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

bool ParseOptions(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    uint64_t number = 0;
    if (ParseFlag(arg, "format", value)) {
      options.format = value;
    } else if (ParseFlag(arg, "num-tests", value) || ParseFlag(arg, "max-call", value)) {
      if (!ParseUint(value, number) || number == 0) {
        std::fprintf(stderr, "%s expects a positive integer, got '%s'\n",
                     arg.substr(0, arg.find('=')).c_str(), value.c_str());
        return false;
      }
      (arg.rfind("--num-tests", 0) == 0 ? options.num_tests : options.max_call) =
          static_cast<size_t>(number);
    } else if (arg == "--all-imports") {
      options.all_imports = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    } else if (options.binary.empty()) {
      options.binary = arg;
    } else {
      std::fprintf(stderr, "afex_analyze takes one binary, got '%s' and '%s'\n",
                   options.binary.c_str(), arg.c_str());
      return false;
    }
  }
  if (options.binary.empty()) {
    std::fprintf(stderr, "afex_analyze needs a binary to analyze\n");
    return false;
  }
  if (options.format != "human" && options.format != "json" && options.format != "space") {
    std::fprintf(stderr, "--format expects 'human', 'json' or 'space', got '%s'\n",
                 options.format.c_str());
    return false;
  }
  return true;
}

// Minimal JSON string escaping: the emitted names are symbol/file names, so
// quotes, backslashes, and control bytes are all that can realistically
// appear.
std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

void PrintHuman(const analysis::TargetProfile& profile, const Options& options) {
  std::printf("target: %s\n", profile.path.c_str());
  std::printf("needed:");
  for (const std::string& lib : profile.needed) {
    std::printf(" %s", lib.c_str());
  }
  std::printf("\nfingerprint: %016llx\n",
              static_cast<unsigned long long>(analysis::TargetProfileFingerprint(profile)));
  std::printf("sancov: %s\n",
              profile.sancov_instrumented ? "instrumented (edge coverage available)"
                                          : "not instrumented (libc proxy coverage only)");
  std::printf("\n%-20s %9s %10s %12s\n", "function", "callsites", "profiled",
              "interposable");
  // Interposable imports print in libc-profile (category) order — the same
  // order they take on the pruned function axis; --all-imports appends the
  // rest in symbol-table order.
  std::vector<const analysis::ImportedFunction*> rows;
  for (const std::string& name : profile.InterposableImports()) {
    rows.push_back(profile.Find(name));
  }
  if (options.all_imports) {
    for (const analysis::ImportedFunction& fn : profile.imports) {
      if (!fn.interposable) {
        rows.push_back(&fn);
      }
    }
  }
  size_t shown = 0;
  for (const analysis::ImportedFunction* fn : rows) {
    std::printf("%-20s %9llu %10s %12s\n", fn->name.c_str(),
                static_cast<unsigned long long>(fn->callsites), fn->profiled ? "yes" : "no",
                fn->interposable ? "yes" : "no");
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (no %s imports)\n", options.all_imports ? "dynamic" : "interposable");
  }
  std::vector<std::string> interposable = profile.InterposableImports();
  size_t full = exec::InterposableFunctions().size();
  std::printf("\n%zu dynamic imports, %zu interposable (of %zu the interposer wraps), "
              "%llu interposable callsites%s\n",
              profile.imports.size(), interposable.size(), full,
              static_cast<unsigned long long>(profile.InterposableCallsites()),
              profile.callsites_scanned ? "" : " (callsite scan skipped: not x86-64)");
  size_t pruned_points = options.num_tests * interposable.size() * options.max_call;
  size_t full_points = options.num_tests * full * options.max_call;
  std::printf("auto space: %zu points (full interposable space: %zu)\n", pruned_points,
              full_points);
}

void PrintJson(const analysis::TargetProfile& profile, const Options& options) {
  std::printf("{\n  \"target\": \"%s\",\n", JsonEscape(profile.path).c_str());
  std::printf("  \"fingerprint\": \"%016llx\",\n",
              static_cast<unsigned long long>(analysis::TargetProfileFingerprint(profile)));
  std::printf("  \"callsites_scanned\": %s,\n",
              profile.callsites_scanned ? "true" : "false");
  std::printf("  \"sancov_instrumented\": %s,\n",
              profile.sancov_instrumented ? "true" : "false");
  std::printf("  \"needed\": [");
  for (size_t i = 0; i < profile.needed.size(); ++i) {
    std::printf("%s\"%s\"", i > 0 ? ", " : "", JsonEscape(profile.needed[i]).c_str());
  }
  std::printf("],\n  \"imports\": [\n");
  bool first = true;
  for (const analysis::ImportedFunction& fn : profile.imports) {
    if (!options.all_imports && !fn.interposable) {
      continue;
    }
    std::printf("%s    {\"function\": \"%s\", \"callsites\": %llu, \"profiled\": %s, "
                "\"interposable\": %s}",
                first ? "" : ",\n", JsonEscape(fn.name).c_str(),
                static_cast<unsigned long long>(fn.callsites), fn.profiled ? "true" : "false",
                fn.interposable ? "true" : "false");
    first = false;
  }
  std::printf("\n  ],\n");
  size_t pruned = profile.InterposableImports().size();
  std::printf("  \"interposable_imports\": %zu,\n", pruned);
  std::printf("  \"interposable_callsites\": %llu,\n",
              static_cast<unsigned long long>(profile.InterposableCallsites()));
  std::printf("  \"auto_space_points\": %zu,\n",
              options.num_tests * pruned * options.max_call);
  std::printf("  \"full_space_points\": %zu\n",
              options.num_tests * exec::InterposableFunctions().size() * options.max_call);
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, options)) {
    PrintUsage();
    return 2;
  }
  std::string error;
  std::optional<analysis::TargetProfile> profile =
      analysis::AnalyzeTargetBinary(options.binary, error);
  if (!profile.has_value()) {
    std::fprintf(stderr, "afex_analyze: %s\n", error.c_str());
    return 1;
  }
  if (options.format == "space") {
    if (profile->InterposableImports().empty()) {
      std::fprintf(stderr,
                   "afex_analyze: '%s' imports no interposable libc functions; "
                   "there is no space to emit\n",
                   options.binary.c_str());
      return 1;
    }
    SpaceSpec spec =
        analysis::AutoSpaceSpec(*profile, options.num_tests, options.max_call);
    std::printf("# derived by afex_analyze from %s\n%s", profile->path.c_str(),
                FormatSpaceSpec(spec).c_str());
  } else if (options.format == "json") {
    PrintJson(*profile, options);
  } else {
    PrintHuman(*profile, options);
  }
  return 0;
}
