// afex_txengine: a small WAL + page-store transaction engine — the
// crash-recovery target for --backend=real storage-failure campaigns. Where
// afex_walutil exercises the errno fault classes, this target exists for
// the mode axis (short_write / drop_sync / kill_at / crash_after_rename)
// and the two-phase crash→recover→verify flow: the harness runs
// `workload <test-id>` under the interposer, then `recover` and `verify`
// in the same sandbox without it.
//
// On-disk state (all in the current working directory):
//  * wal.log    — redo log, O_APPEND raw fds, one text record per write():
//                 "w <txid> <page> <byte> <lsn>" intents, "c <txid> <lsn>"
//                 commits. Torn tails are expected after a crash.
//  * pages.db   — kNumPages fixed 256-byte pages: a 16-byte header (magic,
//                 page id, LSN, FNV-1a payload checksum) + 240 payload
//                 bytes, written in place via lseek(SEEK_SET) + write.
//  * meta.chk   — checkpoint LSN, replaced atomically via meta.tmp+rename.
//  * oracle.txt — ground truth: one "commit <txid>" line appended (stdio
//                 fwrite + fflush, checked) after the engine acknowledges a
//                 commit as durable. The verifier holds the engine to it.
//
// Like its models (minidb, walutil) the engine carries deliberately
// imperfect recovery — the planted bugs the campaign should find:
//
//  * durability hole: every third transaction skips the commit fsync, so a
//    crash before the next sync loses an acknowledged commit — the
//    verifier reports "lost committed txn".
//  * torn-page blindness: recovery only checksums pages at or below the
//    checkpoint LSN; a torn page whose header LSN looks current sails
//    through — the verifier reports "torn page".
//  * post-commit divergence: WAL redo skips odd page ids, so a crash
//    between commit and page apply leaves those pages stale — the verifier
//    reports "page ... diverges".
//
// On top of that, the engine never checks write()/fsync()/rename() return
// values on its hot path (the classic ignored-short-write pattern), so the
// errno fault classes find lost log records here too.
//
// Deliberately plain C-style code with fixed buffers, like walutil: call
// ordinals seen by the interposer stay stable properties of the scenario.
// Built with sanitizers off so LD_PRELOAD works in every CI preset. No
// persistent-mode hook: under --exec-mode=persistent the harness falls
// back to the forkserver, which is itself a tested path.
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

namespace {

constexpr int kNumPages = 8;
constexpr int kPageSize = 256;
constexpr int kHeaderSize = 16;
constexpr int kPayloadSize = kPageSize - kHeaderSize;
constexpr int kTxnsPerTest = 6;
constexpr int kCheckpointEvery = 4;
constexpr unsigned kPageMagic = 0x54585047u;  // "TXPG"

void Fail(const char* what) {
  fprintf(stderr, "txengine: %s failed: errno=%d\n", what, errno);
  exit(1);
}

unsigned Fnv1a(const unsigned char* data, int len) {
  unsigned h = 2166136261u;
  for (int i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void PutU32(unsigned char* p, unsigned v) { memcpy(p, &v, sizeof(v)); }

unsigned GetU32(const unsigned char* p) {
  unsigned v;
  memcpy(&v, p, sizeof(v));
  return v;
}

// Fills `page` with a fully checksummed page image.
void BuildPage(unsigned char* page, unsigned page_id, unsigned lsn, unsigned char byte) {
  memset(page + kHeaderSize, byte, kPayloadSize);
  PutU32(page + 0, kPageMagic);
  PutU32(page + 4, page_id);
  PutU32(page + 8, lsn);
  PutU32(page + 12, Fnv1a(page + kHeaderSize, kPayloadSize));
}

// The engine's original sin, shared by every storage path in the workload:
// write() results are never checked, so short and failed writes (and the
// faults injecting them) go unnoticed until recovery or the verifier.
void UncheckedWrite(int fd, const void* buf, size_t len) {
  ssize_t ignored = write(fd, buf, len);
  (void)ignored;
}

// ---- WAL parsing (shared by recover and verify) ----------------------------

struct WalRecord {
  int commit;  // 1 = "c" record, 0 = "w" record
  int txid;
  unsigned page;
  unsigned byte;
  unsigned lsn;
};

constexpr int kMaxWalRecords = 256;

// Parses wal.log into records, in file order. Malformed lines — the torn
// tails and spliced records a crashed or short-written log leaves behind —
// are skipped, exactly as recovery must tolerate them.
int LoadWal(WalRecord* recs, int cap) {
  FILE* wal = fopen("wal.log", "r");
  if (wal == nullptr) {
    return 0;  // no log yet (crash before the first append)
  }
  char line[128];
  int count = 0;
  while (fgets(line, sizeof(line), wal) != nullptr) {
    WalRecord r;
    memset(&r, 0, sizeof(r));
    if (sscanf(line, "w %d %u %u %u", &r.txid, &r.page, &r.byte, &r.lsn) == 4 &&
        r.page < static_cast<unsigned>(kNumPages) && r.byte <= 0xff) {
      r.commit = 0;
    } else if (sscanf(line, "c %d %u", &r.txid, &r.lsn) == 2) {
      r.commit = 1;
    } else {
      continue;  // torn record
    }
    if (count < cap) {
      recs[count++] = r;
    }
  }
  fclose(wal);
  return count;
}

int TxnCommitted(const WalRecord* recs, int count, int txid) {
  for (int i = 0; i < count; ++i) {
    if (recs[i].commit && recs[i].txid == txid) {
      return 1;
    }
  }
  return 0;
}

// ---- workload --------------------------------------------------------------

// A checkpoint claims everything up to `lsn` is durable in pages.db: flush
// the pages, then atomically replace meta.chk. The flush and rename results
// are ignored like everything else on the workload path.
void Checkpoint(int pages_fd, unsigned lsn) {
  (void)fsync(pages_fd);
  int fd = open("meta.tmp", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    Fail("meta open");
  }
  char line[32];
  int len = snprintf(line, sizeof(line), "ckpt %u\n", lsn);
  UncheckedWrite(fd, line, static_cast<size_t>(len));
  (void)fdatasync(fd);
  if (close(fd) != 0) {
    Fail("meta close");
  }
  (void)rename("meta.tmp", "meta.chk");
}

int RunWorkload(int test_id) {
  int pages_fd = open("pages.db", O_RDWR | O_CREAT, 0644);
  if (pages_fd < 0) {
    Fail("pages open");
  }
  struct stat st;
  if (fstat(pages_fd, &st) != 0) {
    Fail("pages stat");
  }
  if (st.st_size < static_cast<off_t>(kNumPages * kPageSize)) {
    unsigned char page[kPageSize];
    for (int i = 0; i < kNumPages; ++i) {
      BuildPage(page, static_cast<unsigned>(i), 0, 0);
      if (lseek(pages_fd, i * kPageSize, SEEK_SET) < 0) {
        Fail("pages seek");
      }
      UncheckedWrite(pages_fd, page, kPageSize);
    }
  }
  int wal_fd = open("wal.log", O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (wal_fd < 0) {
    Fail("wal open");
  }
  FILE* oracle = fopen("oracle.txt", "a");
  if (oracle == nullptr) {
    Fail("oracle open");
  }

  unsigned lsn = 0;
  int base = test_id * 16;
  for (int j = 1; j <= kTxnsPerTest; ++j) {
    int txid = base + j;
    unsigned pages[2] = {static_cast<unsigned>(txid % kNumPages),
                         static_cast<unsigned>((txid + 3) % kNumPages)};
    unsigned char bytes[2];
    unsigned wlsn[2];
    char line[64];
    for (int k = 0; k < 2; ++k) {
      wlsn[k] = ++lsn;
      bytes[k] = static_cast<unsigned char>((txid * 7 + static_cast<int>(pages[k])) & 0xff);
      int len = snprintf(line, sizeof(line), "w %d %u %u %u\n", txid, pages[k], bytes[k],
                         wlsn[k]);
      UncheckedWrite(wal_fd, line, static_cast<size_t>(len));
    }
    unsigned commit_lsn = ++lsn;
    int len = snprintf(line, sizeof(line), "c %d %u\n", txid, commit_lsn);
    UncheckedWrite(wal_fd, line, static_cast<size_t>(len));
    // Planted bug 1 (durability hole): every third transaction trusts the
    // OS to get the log out "soon" and skips the commit fsync. A crash
    // before the next sync loses a commit the oracle line below already
    // acknowledged to the client.
    if (txid % 3 != 0) {
      (void)fsync(wal_fd);
    }
    len = snprintf(line, sizeof(line), "commit %d\n", txid);
    if (fwrite(line, 1, static_cast<size_t>(len), oracle) != static_cast<size_t>(len)) {
      Fail("oracle write");
    }
    if (fflush(oracle) != 0) {
      Fail("oracle flush");
    }
    // Apply the committed writes to the page store, in place.
    unsigned char page[kPageSize];
    for (int k = 0; k < 2; ++k) {
      BuildPage(page, pages[k], wlsn[k], bytes[k]);
      if (lseek(pages_fd, static_cast<off_t>(pages[k]) * kPageSize, SEEK_SET) < 0) {
        Fail("pages seek");
      }
      UncheckedWrite(pages_fd, page, kPageSize);
    }
    if (j % kCheckpointEvery == 0) {
      Checkpoint(pages_fd, lsn);
    }
  }
  if (close(wal_fd) != 0) {
    Fail("wal close");
  }
  if (close(pages_fd) != 0) {
    Fail("pages close");
  }
  if (fclose(oracle) != 0) {
    Fail("oracle close");
  }
  printf("workload ok: %d txns, lsn %u\n", kTxnsPerTest, lsn);
  return 0;
}

// ---- recovery --------------------------------------------------------------

int RunRecover() {
  // Checkpoint LSN; a missing or torn meta.chk conservatively reads as 0
  // (redo everything).
  unsigned ckpt_lsn = 0;
  FILE* meta = fopen("meta.chk", "r");
  if (meta != nullptr) {
    if (fscanf(meta, "ckpt %u", &ckpt_lsn) != 1) {
      ckpt_lsn = 0;
    }
    fclose(meta);
  }

  int pages_fd = open("pages.db", O_RDWR | O_CREAT, 0644);
  if (pages_fd < 0) {
    Fail("pages open");
  }
  static unsigned char pages[kNumPages][kPageSize];
  int dirty[kNumPages] = {0};
  for (int i = 0; i < kNumPages; ++i) {
    ssize_t n = pread(pages_fd, pages[i], kPageSize, static_cast<off_t>(i) * kPageSize);
    if (n < 0) {
      Fail("pages read");
    }
    if (n < kPageSize || GetU32(pages[i]) != kPageMagic) {
      // Short or never-written page (crash during initialization): rebuild
      // it as a fresh zero page and let redo fill it back in.
      BuildPage(pages[i], static_cast<unsigned>(i), 0, 0);
      dirty[i] = 1;
      continue;
    }
    unsigned page_lsn = GetU32(pages[i] + 8);
    if (page_lsn <= ckpt_lsn) {
      if (GetU32(pages[i] + 12) != Fnv1a(pages[i] + kHeaderSize, kPayloadSize)) {
        // Below the checkpoint there is no WAL to rebuild from: genuinely
        // unrecoverable, refuse to come up.
        fprintf(stderr, "txengine-recover: unrecoverable torn page %d below checkpoint %u\n",
                i, ckpt_lsn);
        return 1;
      }
    }
    // Planted bug 2 (torn-page blindness): a page whose header LSN is past
    // the checkpoint "must" have been written this epoch, so its checksum
    // is not validated — which is exactly the page a torn write produces:
    // fresh header, stale payload.
  }

  static WalRecord recs[kMaxWalRecords];
  int count = LoadWal(recs, kMaxWalRecords);
  unsigned max_lsn = ckpt_lsn;
  for (int i = 0; i < count; ++i) {
    if (recs[i].lsn > max_lsn) {
      max_lsn = recs[i].lsn;
    }
    if (recs[i].commit || !TxnCommitted(recs, count, recs[i].txid)) {
      continue;
    }
    // Planted bug 3 (post-commit divergence): odd pages "live in the
    // overlay extent the checkpoint already flushed", so redo skips them.
    // It never flushed anything of the sort; a crash between commit and
    // page apply leaves every odd page stale.
    if (recs[i].page % 2 != 0) {
      continue;
    }
    unsigned page_lsn = GetU32(pages[recs[i].page] + 8);
    if (recs[i].lsn <= page_lsn) {
      continue;  // page already reflects this record
    }
    BuildPage(pages[recs[i].page], recs[i].page, recs[i].lsn,
              static_cast<unsigned char>(recs[i].byte));
    dirty[recs[i].page] = 1;
  }

  // Unlike the workload, recovery checks every step: failing to persist a
  // redone page must not report a successful recovery.
  int redone = 0;
  for (int i = 0; i < kNumPages; ++i) {
    if (!dirty[i]) {
      continue;
    }
    if (pwrite(pages_fd, pages[i], kPageSize, static_cast<off_t>(i) * kPageSize) !=
        kPageSize) {
      Fail("pages write");
    }
    ++redone;
  }
  if (fsync(pages_fd) != 0) {
    Fail("pages fsync");
  }
  if (close(pages_fd) != 0) {
    Fail("pages close");
  }
  int fd = open("meta.tmp", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    Fail("meta open");
  }
  char line[32];
  int len = snprintf(line, sizeof(line), "ckpt %u\n", max_lsn);
  if (write(fd, line, static_cast<size_t>(len)) != len) {
    Fail("meta write");
  }
  if (fdatasync(fd) != 0) {
    Fail("meta sync");
  }
  if (close(fd) != 0) {
    Fail("meta close");
  }
  if (rename("meta.tmp", "meta.chk") != 0) {
    Fail("meta rename");
  }
  printf("recovered: %d pages redone, checkpoint lsn %u\n", redone, max_lsn);
  return 0;
}

// ---- verify ----------------------------------------------------------------

// Independent invariant checker, written with none of the engine's bugs: it
// recomputes the expected page store from the durable log and holds the
// recovered state to the oracle's acknowledgements. Exit 1 = invariant
// violated; every message is a single distinctive first line because the
// harness folds it into the test record's detail field.
int RunVerify() {
  static WalRecord recs[kMaxWalRecords];
  int count = LoadWal(recs, kMaxWalRecords);

  // Expected state: all committed writes applied in log order.
  unsigned exp_lsn[kNumPages] = {0};
  unsigned char exp_byte[kNumPages] = {0};
  for (int i = 0; i < count; ++i) {
    if (recs[i].commit || !TxnCommitted(recs, count, recs[i].txid)) {
      continue;
    }
    exp_lsn[recs[i].page] = recs[i].lsn;
    exp_byte[recs[i].page] = static_cast<unsigned char>(recs[i].byte);
  }

  // Durability: every commit the engine acknowledged must be in the log.
  int promised = 0;
  FILE* oracle = fopen("oracle.txt", "r");
  if (oracle != nullptr) {
    char line[64];
    int txid = 0;
    while (fgets(line, sizeof(line), oracle) != nullptr) {
      if (sscanf(line, "commit %d", &txid) != 1) {
        continue;
      }
      ++promised;
      if (!TxnCommitted(recs, count, txid)) {
        printf("txengine-verify: lost committed txn %d (acknowledged but absent from "
               "durable log)\n",
               txid);
        fclose(oracle);
        return 1;
      }
    }
    fclose(oracle);
  }

  int pages_fd = open("pages.db", O_RDONLY);
  if (pages_fd < 0) {
    printf("txengine-verify: pages.db missing after recovery\n");
    return 1;
  }
  unsigned char page[kPageSize];
  for (int i = 0; i < kNumPages; ++i) {
    ssize_t n = pread(pages_fd, page, kPageSize, static_cast<off_t>(i) * kPageSize);
    if (n != kPageSize || GetU32(page) != kPageMagic) {
      printf("txengine-verify: torn page %d (bad image)\n", i);
      close(pages_fd);
      return 1;
    }
    if (GetU32(page + 12) != Fnv1a(page + kHeaderSize, kPayloadSize)) {
      printf("txengine-verify: torn page %d (checksum mismatch)\n", i);
      close(pages_fd);
      return 1;
    }
    unsigned lsn = GetU32(page + 8);
    unsigned char byte = page[kHeaderSize];
    if (lsn != exp_lsn[i] || byte != exp_byte[i]) {
      printf("txengine-verify: page %d diverges from durable log (lsn %u expected %u, "
             "byte %u expected %u)\n",
             i, lsn, exp_lsn[i], byte, exp_byte[i]);
      close(pages_fd);
      return 1;
    }
  }
  close(pages_fd);
  printf("verify ok: %d commits acknowledged, %d wal records, %d pages consistent\n",
         promised, count, kNumPages);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Unbuffered stdio: a killed workload must not carry buffered output into
  // the harness's next capture window, and the verifier's verdict line must
  // be complete even if the parent truncates the pipe.
  setvbuf(stdout, nullptr, _IONBF, 0);
  setvbuf(stderr, nullptr, _IONBF, 0);
  if (argc >= 2 && strcmp(argv[1], "workload") == 0 && argc == 3) {
    int test_id = static_cast<int>(strtol(argv[2], nullptr, 10));
    if (test_id < 1) {
      fprintf(stderr, "txengine: test id must be >= 1, got '%s'\n", argv[2]);
      return 2;
    }
    return RunWorkload(test_id);
  }
  if (argc == 2 && strcmp(argv[1], "recover") == 0) {
    return RunRecover();
  }
  if (argc == 2 && strcmp(argv[1], "verify") == 0) {
    return RunVerify();
  }
  fprintf(stderr, "usage: afex_txengine workload <test-id> | recover | verify\n");
  return 2;
}
